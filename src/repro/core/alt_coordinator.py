"""The rejected design: threading model as the PRIMARY adjustment.

§3.2 of the paper describes two candidate orderings for the multi-level
coordination and adopts thread count as the primary.  This module
implements the alternative — "Change in threading model: Threading model
changes trigger finding the locally optimal number of threads for the
current threading model configuration" — so the design choice can be
measured instead of argued (see ``bench.ablations.ablate_primary_order``).

The paper's two objections, which the ablation quantifies:

1. finding the locally optimal thread count requires climbing *to the
   point of performance degradation*; doing that inside the inner loop
   oversubscribes the system much more frequently during adaptation;
2. thread count changes have higher performance variance than threading
   model changes, so an outer threading-model search fed by inner
   thread-count results receives a noisier objective.

Structure: the outer loop is a threading-model phase; every trial
placement it emits is evaluated by running a full inner thread-count
search to settlement, and the settled throughput is what the outer
search sees as that placement's measurement.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Sequence

from ..runtime.config import ElasticityConfig
from .binning import ProfilingGroup
from .coordinator import CoordinatorAction
from .history import Direction
from .thread_count import ThreadCountElasticity
from .threading_model import (
    AdjustDecision,
    Step,
    ThreadingModelElasticity,
)


class AltMode(enum.Enum):
    INIT = "init"
    INNER_THREADS = "inner_threads"
    STABLE = "stable"


class ThreadingPrimaryCoordinator:
    """Multi-level coordination with the threading model as primary.

    Exposes the same ``step(observed) -> CoordinatorAction`` protocol as
    :class:`~repro.core.coordinator.MultiLevelCoordinator`, so the same
    executor drives it.
    """

    def __init__(
        self,
        config: ElasticityConfig,
        max_threads: int,
        profile_provider: Callable[[], Sequence[ProfilingGroup]],
        seed: int = 0,
    ) -> None:
        self.config = config
        self.max_threads = max_threads
        self.profile_provider = profile_provider
        self.threading_model = ThreadingModelElasticity(
            seed=seed, sens=config.sens
        )
        self.mode = AltMode.INIT
        self._tc: Optional[ThreadCountElasticity] = None
        self._threads = config.initial_threads
        self._outer_rounds = 0
        self._max_outer_rounds = 8
        self._mode_log: List[AltMode] = []

    # ------------------------------------------------------------------
    @property
    def current_threads(self) -> int:
        return self._threads

    @property
    def is_stable(self) -> bool:
        return self.mode is AltMode.STABLE

    def mode_history(self) -> List[AltMode]:
        return list(self._mode_log)

    # ------------------------------------------------------------------
    def _new_inner_search(self) -> ThreadCountElasticity:
        """Fresh inner thread-count search for the current placement.

        Restarted from the minimum every time, per the design under
        test: the inner loop must re-establish the locally optimal
        count for each threading-model trial.
        """
        return ThreadCountElasticity(
            min_threads=self.config.min_threads,
            max_threads=self.max_threads,
            initial_threads=self.config.min_threads,
            sens=self.config.sens,
        )

    def step(self, observed: float) -> CoordinatorAction:
        self._mode_log.append(self.mode)
        if self.mode is AltMode.INIT:
            groups = list(self.profile_provider())
            self.threading_model.set_groups(
                groups, self.threading_model.placement()
            )
            step = self.threading_model.begin_phase(
                Direction.UP, observed
            )
            return self._emit(step, observed)

        if self.mode is AltMode.INNER_THREADS:
            assert self._tc is not None
            proposal = self._tc.propose(observed)
            if proposal is not None:
                self._threads = proposal
                return CoordinatorAction(
                    set_threads=proposal, note="inner thread search"
                )
            if self._tc.settled:
                # Inner search done: its settled throughput is the
                # outer measurement for the current trial placement.
                settled_throughput = (
                    self._tc.measurement(self._tc.current) or observed
                )
                self._tc = None
                if not self.threading_model.phase_active:
                    self.mode = AltMode.STABLE
                    return CoordinatorAction(note="settled")
                step = self.threading_model.step(settled_throughput)
                return self._emit(step, settled_throughput)
            return CoordinatorAction(note="inner holding")

        return CoordinatorAction(note="stable")

    def _emit(self, step: Step, observed: float) -> CoordinatorAction:
        if step.done:
            self._outer_rounds += 1
            if (
                step.decision is AdjustDecision.CHANGE
                and self._outer_rounds < self._max_outer_rounds
            ):
                # Placement changed: open another outer phase.
                next_step = self.threading_model.begin_phase(
                    Direction.UP, observed
                )
                if not next_step.done:
                    return self._start_inner(next_step)
            self.mode = AltMode.STABLE
            return CoordinatorAction(
                set_placement=step.placement,
                note=f"outer settled ({step.decision.value})",
            )
        return self._start_inner(step)

    def _start_inner(self, step: Step) -> CoordinatorAction:
        """Apply the outer trial and launch the inner thread search."""
        self.mode = AltMode.INNER_THREADS
        self._tc = self._new_inner_search()
        self._threads = self._tc.current
        return CoordinatorAction(
            set_placement=step.placement,
            set_threads=self._threads,
            note="outer trial + inner restart",
        )
