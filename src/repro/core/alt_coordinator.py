"""The rejected design: threading model as the PRIMARY adjustment.

§3.2 of the paper describes two candidate orderings for the multi-level
coordination and adopts thread count as the primary.  This module
implements the alternative — "Change in threading model: Threading model
changes trigger finding the locally optimal number of threads for the
current threading model configuration" — so the design choice can be
measured instead of argued (see ``bench.ablations.ablate_primary_order``).

The paper's two objections, which the ablation quantifies:

1. finding the locally optimal thread count requires climbing *to the
   point of performance degradation*; doing that inside the inner loop
   oversubscribes the system much more frequently during adaptation;
2. thread count changes have higher performance variance than threading
   model changes, so an outer threading-model search fed by inner
   thread-count results receives a noisier objective.

Structure: the outer loop is a threading-model phase; every trial
placement it emits is evaluated by running a full inner thread-count
search to settlement, and the settled throughput is what the outer
search sees as that placement's measurement.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Sequence

from ..obs.hub import Obs, ensure_hub
from ..runtime.config import ElasticityConfig
from ..runtime.queues import QueuePlacement
from .binning import ProfilingGroup
from .coordinator import CoordinatorAction, _join_detail as _join
from .history import Direction
from .metrics import Trend, classify_trend
from .thread_count import ThreadCountElasticity
from .threading_model import (
    AdjustDecision,
    Step,
    ThreadingModelElasticity,
)


class AltMode(enum.Enum):
    INIT = "init"
    INNER_THREADS = "inner_threads"
    STABLE = "stable"


class ThreadingPrimaryCoordinator:
    """Multi-level coordination with the threading model as primary.

    Exposes the same ``step(observed) -> CoordinatorAction`` protocol as
    :class:`~repro.core.coordinator.MultiLevelCoordinator`, so the same
    executor drives it.
    """

    def __init__(
        self,
        config: ElasticityConfig,
        max_threads: int,
        profile_provider: Callable[[], Sequence[ProfilingGroup]],
        seed: int = 0,
        obs: Optional[Obs] = None,
    ) -> None:
        self.config = config
        self.max_threads = max_threads
        self.profile_provider = profile_provider
        self._obs = ensure_hub(obs)
        self.threading_model = ThreadingModelElasticity(
            seed=seed, sens=config.sens, obs=self._obs
        )
        self.mode = AltMode.INIT
        self._tc: Optional[ThreadCountElasticity] = None
        self._threads = config.initial_threads
        self._outer_rounds = 0
        self._max_outer_rounds = 8
        self._mode_log: List[AltMode] = []
        # Per-step decision attribution, folded into the single
        # Decision record emitted at the end of each step().
        self._rule = ""
        self._detail = ""
        self._last_observed: Optional[float] = None
        # Warm-start session (repro.core.warmstart); None = stock.
        self._warm = None
        # After a non-snap warm entry, one outer threading-model probe
        # runs once the inner search settles — the model's placement
        # must survive contact with a measurement, same as the primary
        # design's retained exploration.
        self._warm_probe_pending = False
        self._suppress_next_trend = False

    # ------------------------------------------------------------------
    @property
    def current_threads(self) -> int:
        return self._threads

    @property
    def is_stable(self) -> bool:
        return self.mode is AltMode.STABLE

    def mode_history(self) -> List[AltMode]:
        return list(self._mode_log)

    def set_warm_start(self, session) -> None:
        """Install (or clear, with None) the warm-start session —
        the same surface as ``MultiLevelCoordinator.set_warm_start``."""
        self._warm = session

    # ------------------------------------------------------------------
    def _new_inner_search(self) -> ThreadCountElasticity:
        """Fresh inner thread-count search for the current placement.

        Restarted from the minimum every time, per the design under
        test: the inner loop must re-establish the locally optimal
        count for each threading-model trial.
        """
        return ThreadCountElasticity(
            min_threads=self.config.min_threads,
            max_threads=self.max_threads,
            initial_threads=self.config.min_threads,
            sens=self.config.sens,
            obs=self._obs,
        )

    def step(self, observed: float) -> CoordinatorAction:
        self._mode_log.append(self.mode)
        mode_before = self.mode
        self._rule = ""
        self._detail = ""
        suppress_trend = self._suppress_next_trend
        self._suppress_next_trend = False
        action = self._step_impl(observed)
        if self._last_observed is None or suppress_trend:
            trend = Trend.FLAT
        else:
            trend = classify_trend(
                self._last_observed, observed, self.config.sens
            )
        self._last_observed = observed
        self._obs.decision(
            component="alt_coordinator",
            mode=mode_before.value,
            rule=self._rule or "ALT-HOLD",
            detail=self._detail,
            observed=observed,
            trend=trend.value,
            set_threads=action.set_threads,
            set_n_queues=(
                action.set_placement.n_queues
                if action.set_placement is not None
                else None
            ),
            note=action.note,
        )
        return action

    def _step_impl(self, observed: float) -> CoordinatorAction:
        if self.mode is AltMode.INIT:
            groups = list(self.profile_provider())
            hint = self._warm.hint() if self._warm is not None else None
            if hint is not None:
                return self._apply_warm_hint(groups, hint)
            self.threading_model.set_groups(
                groups, self.threading_model.placement()
            )
            step = self.threading_model.begin_phase(
                Direction.UP, observed
            )
            self._rule = "ALT-INIT"
            return self._emit(step, observed)

        if self.mode is AltMode.INNER_THREADS:
            assert self._tc is not None
            proposal = self._tc.propose(observed)
            if proposal is not None:
                self._threads = proposal
                self._rule = "ALT-INNER-THREADS"
                self._detail = self._tc.last_rule
                return CoordinatorAction(
                    set_threads=proposal, note="inner thread search"
                )
            if self._tc.settled:
                # Inner search done: its settled throughput is the
                # outer measurement for the current trial placement.
                settled_throughput = (
                    self._tc.measurement(self._tc.current) or observed
                )
                self._detail = self._tc.last_rule
                self._tc = None
                if not self.threading_model.phase_active:
                    if self._warm_probe_pending:
                        # Warm entry skipped the outer exploration;
                        # give the model's placement one measured
                        # threading-model pass before declaring
                        # stability.
                        self._warm_probe_pending = False
                        step = self.threading_model.begin_phase(
                            Direction.UP, settled_throughput
                        )
                        self._rule = "ALT-WARM-PROBE"
                        return self._emit(step, settled_throughput)
                    self.mode = AltMode.STABLE
                    self._rule = "ALT-SETTLED"
                    self._record_converged(settled_throughput)
                    return CoordinatorAction(note="settled")
                step = self.threading_model.step(settled_throughput)
                return self._emit(step, settled_throughput)
            self._rule = "ALT-HOLD"
            self._detail = self._tc.last_rule
            return CoordinatorAction(note="inner holding")

        self._rule = "ALT-STABLE"
        return CoordinatorAction(note="stable")

    def _apply_warm_hint(self, groups, hint) -> CoordinatorAction:
        """Seed both levels from a warm-start hint (see
        ``MultiLevelCoordinator._apply_warm_hint``)."""
        valid = {m for g in groups for m in g.members}
        queued = [i for i in hint.queued if i in valid]
        self.threading_model.set_groups(groups, QueuePlacement.of(queued))
        placement = self.threading_model.placement()
        level = max(
            self.config.min_threads,
            min(self.max_threads, hint.threads),
        )
        self._threads = level
        self._suppress_next_trend = True
        self._detail = _join(self._detail, f"warm-{hint.source}")
        if hint.snap:
            self.mode = AltMode.STABLE
            self._rule = "ALT-WARM-SNAP"
            return CoordinatorAction(
                set_placement=placement,
                set_threads=level,
                note="warm snap",
            )
        self.mode = AltMode.INNER_THREADS
        self._tc = self._new_inner_search()
        self._tc.warm_start(level)
        self._warm_probe_pending = True
        self._rule = "ALT-WARM-START"
        return CoordinatorAction(
            set_placement=placement,
            set_threads=level,
            note="warm start + inner search",
        )

    def _record_converged(self, observed: float) -> None:
        if self._warm is None:
            return
        self._warm.record(
            threads=self._threads,
            queued=tuple(sorted(self.threading_model.placement().queued)),
            throughput=observed,
        )

    def _emit(self, step: Step, observed: float) -> CoordinatorAction:
        if step.done:
            self._outer_rounds += 1
            if (
                step.decision is AdjustDecision.CHANGE
                and self._outer_rounds < self._max_outer_rounds
            ):
                # Placement changed: open another outer phase.
                next_step = self.threading_model.begin_phase(
                    Direction.UP, observed
                )
                if not next_step.done:
                    return self._start_inner(next_step)
            self.mode = AltMode.STABLE
            if not self._rule or self._rule == "ALT-INIT":
                self._rule = "ALT-SETTLED"
            self._detail = _join(
                self._detail, f"tm-{step.decision.value}"
            )
            self._record_converged(observed)
            return CoordinatorAction(
                set_placement=step.placement,
                note=f"outer settled ({step.decision.value})",
            )
        return self._start_inner(step)

    def _start_inner(self, step: Step) -> CoordinatorAction:
        """Apply the outer trial and launch the inner thread search."""
        self.mode = AltMode.INNER_THREADS
        self._tc = self._new_inner_search()
        self._threads = self._tc.current
        if self._rule != "ALT-INIT":
            self._rule = "ALT-OUTER-TRIAL"
        tm_rule = self.threading_model.last_rule
        if tm_rule:
            self._detail = _join(self._detail, tm_rule)
        return CoordinatorAction(
            set_placement=step.placement,
            set_threads=self._threads,
            note="outer trial + inner restart",
        )
