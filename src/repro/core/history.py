"""Learning from history (§3.3, first optimization).

"The essence of this optimization is to keep track of the thread range
(N, M) that works well with the recent threading model adjustment ...
Inside each history record of threading model adjustment, we record the
maximum and minimum number of threads that have worked well with this
configuration."

When the thread count changes, the coordinator consults the most recent
record:

- count within ``[min_threads, max_threads]``  -> skip the threading
  model adjustment entirely (``Direction.NONE``),
- count above the range -> explore *more* scheduler queues
  (``Direction.UP``),
- count below the range -> switch operators back to manual
  (``Direction.DOWN``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..runtime.queues import QueuePlacement


class Direction(enum.Enum):
    """Which way the secondary (threading model) adjustment should go."""

    NONE = "none"
    UP = "up"
    DOWN = "down"


@dataclass
class AdjustmentRecord:
    """One history entry: a placement and its validated thread range."""

    placement: QueuePlacement
    min_threads: int
    max_threads: int

    def __post_init__(self) -> None:
        if self.min_threads > self.max_threads:
            raise ValueError(
                f"min_threads ({self.min_threads}) > max_threads "
                f"({self.max_threads})"
            )

    def to_continue(self, thread_level: int) -> Direction:
        """Fig. 7's ``lastAdjustment.toContinue(threadLevel)``."""
        if thread_level > self.max_threads:
            return Direction.UP
        if thread_level < self.min_threads:
            return Direction.DOWN
        return Direction.NONE

    def extend(self, thread_level: int) -> None:
        """Widen the validated range to include ``thread_level``.

        Called when a threading model exploration at this thread level
        ended with decision STAY (the placement already was optimal).
        """
        self.min_threads = min(self.min_threads, thread_level)
        self.max_threads = max(self.max_threads, thread_level)


@dataclass
class AdjustmentHistory:
    """Ordered log of threading-model adjustments.

    Only the most recent record is consulted for skip decisions (as in
    the paper); the full log is retained for the SASO analysis and for
    the reports in the benchmark harness.
    """

    records: List[AdjustmentRecord] = field(default_factory=list)

    @property
    def last(self) -> Optional[AdjustmentRecord]:
        return self.records[-1] if self.records else None

    def create_entry(
        self, placement: QueuePlacement, thread_level: int
    ) -> AdjustmentRecord:
        """New record after a CHANGE decision (placement changed)."""
        record = AdjustmentRecord(
            placement=placement,
            min_threads=thread_level,
            max_threads=thread_level,
        )
        self.records.append(record)
        return record

    def seed_entry(
        self,
        placement: QueuePlacement,
        min_threads: int,
        max_threads: int,
    ) -> AdjustmentRecord:
        """New record with a pre-validated thread range.

        Used by warm starts (:mod:`repro.core.warmstart`): a phase
        store replays the range a previous convergence validated, so
        thread changes landing inside it skip the secondary adjustment
        exactly as if this run had learned it.
        """
        record = AdjustmentRecord(
            placement=placement,
            min_threads=min_threads,
            max_threads=max_threads,
        )
        self.records.append(record)
        return record

    def update_entry(self, thread_level: int) -> None:
        """Extend the current record after a STAY decision."""
        if not self.records:
            raise RuntimeError(
                "update_entry called with no history record; a STAY "
                "decision requires a prior CHANGE"
            )
        self.records[-1].extend(thread_level)

    def direction_for(self, thread_level: int) -> Direction:
        """Skip decision for a new thread level (NONE if no history)."""
        if not self.records:
            return Direction.UP
        return self.records[-1].to_continue(thread_level)

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)
