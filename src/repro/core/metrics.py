"""Throughput observation and trend classification.

The elastic controllers never act on raw throughput numbers; they act on
*trends* between consecutive observations, filtered by the sensitivity
threshold SENS (§3.1.1): "we must observe at least a 5% performance
difference before establishing a performance trend".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class Trend(enum.Enum):
    """Direction of a throughput change between two observations."""

    UP = "up"
    DOWN = "down"
    FLAT = "flat"


def classify_trend(previous: float, current: float, sens: float) -> Trend:
    """Classify the change from ``previous`` to ``current``.

    A change smaller than ``sens`` (relative) in either direction is
    indistinguishable from system noise and classified FLAT.
    """
    if previous < 0 or current < 0:
        raise ValueError(
            "throughput observations must be non-negative, got "
            f"previous={previous!r}, current={current!r}"
        )
    if previous == 0.0:
        return Trend.UP if current > 0.0 else Trend.FLAT
    ratio = current / previous
    if ratio > 1.0 + sens:
        return Trend.UP
    if ratio < 1.0 - sens:
        return Trend.DOWN
    return Trend.FLAT


def significantly_better(
    candidate: float, reference: float, sens: float
) -> bool:
    """True when ``candidate`` beats ``reference`` by more than SENS."""
    return classify_trend(reference, candidate, sens) is Trend.UP


@dataclass
class ThroughputSensor:
    """Sliding record of observed throughput.

    Keeps the full history (cheap — one float per adaptation period) and
    exposes the aggregates the controllers need: the latest observation,
    the previous one, and a smoothed recent mean used as the "settled
    baseline" for workload-change detection (Fig. 13).
    """

    window: int = 8
    _history: List[float] = field(default_factory=list)

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"throughput must be >= 0, got {value}")
        self._history.append(value)

    @property
    def latest(self) -> Optional[float]:
        return self._history[-1] if self._history else None

    @property
    def previous(self) -> Optional[float]:
        return self._history[-2] if len(self._history) >= 2 else None

    @property
    def count(self) -> int:
        return len(self._history)

    def recent_mean(self, n: Optional[int] = None) -> float:
        """Mean of the last ``n`` observations (default: the window)."""
        if not self._history:
            return 0.0
        n = n or self.window
        tail = self._history[-n:]
        return sum(tail) / len(tail)

    def trend(self, sens: float) -> Trend:
        """Trend between the last two observations."""
        if len(self._history) < 2:
            return Trend.FLAT
        return classify_trend(self._history[-2], self._history[-1], sens)

    def history(self) -> List[float]:
        return list(self._history)

    def reset(self) -> None:
        self._history.clear()
