"""Multi-level elastic coordination (§3.2-§3.3, Fig. 7).

The coordinator owns both elastic components and implements the paper's
iterative refinement: "fixing one elastic component at a time while
making adjustment for the other until no performance improvement can be
gained".  Design decisions encoded here, as in the paper:

- **Primary adjustment is the thread count** — a thread count change
  *triggers* a threading model exploration, not the other way round
  (avoids oversubscription overshoot; thread changes have higher
  variance so they live in the outer loop).
- **Adjustment direction starts from minimum parallelism** — no queues,
  minimum threads; parallelism is introduced upward from a fully
  dynamic start (more reliable signal, no initial over-subscription).
  Warm starts (:mod:`repro.core.warmstart`) are the sanctioned
  exception: a seeded entry lands on a *non-minimal* state, so both
  the warm entry and ``_restart`` anchor the thread-count search at
  the current level — arming its guarded downward probe — and
  suppress the trend classifier for the first period at the new
  state (the jump itself is a configuration change, not a workload
  trend).
- **Learning from history** — each threading model adjustment records
  the thread range it remained optimal for; a thread change landing
  inside the recorded range skips the secondary adjustment.
- **Satisfaction factor** — if the thread change alone improved
  throughput proportionately (measured sf >= THRE), the secondary
  adjustment is skipped outright.

The coordinator is substrate-agnostic: it sees throughput observations
(one per adaptation period) and emits :class:`CoordinatorAction`
configuration changes; profiling groups are obtained through a callback
so the same logic drives the analytical model, the discrete-event
simulator, or (in principle) a real runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..obs.hub import Obs, ensure_hub
from ..runtime.config import ElasticityConfig
from ..runtime.queues import QueuePlacement
from .binning import ProfilingGroup
from .history import AdjustmentHistory, Direction
from .metrics import Trend, classify_trend
from .satisfaction import (
    SatisfactionSample,
    measured_satisfaction,
    should_skip_secondary,
)
from .thread_count import ThreadCountElasticity
from .threading_model import (
    AdjustDecision,
    Step,
    ThreadingModelElasticity,
)


def _join_detail(existing: str, extra: str) -> str:
    """Append a decision-detail fragment, space-separated."""
    return f"{existing} {extra}" if existing else extra


class Mode(enum.Enum):
    """Which elastic component is active (Fig. 7's two booleans)."""

    INIT = "init"
    THREADING_MODEL = "threading_model"
    THREAD_COUNT = "thread_count"
    STABLE = "stable"


@dataclass(frozen=True)
class CoordinatorAction:
    """Configuration changes to apply before the next period."""

    set_placement: Optional[QueuePlacement] = None
    set_threads: Optional[int] = None
    note: str = ""

    @property
    def is_noop(self) -> bool:
        return self.set_placement is None and self.set_threads is None


@dataclass
class _PendingThreadChange:
    prev_threads: int
    new_threads: int
    prev_throughput: float


class MultiLevelCoordinator:
    """Fig. 7's ``adapt()`` loop as an event-driven controller."""

    def __init__(
        self,
        config: ElasticityConfig,
        max_threads: int,
        profile_provider: Callable[[], Sequence[ProfilingGroup]],
        seed: int = 0,
        workload_change_factor: float = 3.0,
        workload_change_persistence: int = 2,
        obs: Optional[Obs] = None,
    ) -> None:
        self.config = config
        self.profile_provider = profile_provider
        self._obs = ensure_hub(obs)
        self.threading_model = ThreadingModelElasticity(
            seed=seed, sens=config.sens, obs=self._obs
        )
        self.thread_count = ThreadCountElasticity(
            min_threads=config.min_threads,
            max_threads=(
                config.max_threads
                if config.max_threads is not None
                else max_threads
            ),
            initial_threads=config.initial_threads,
            sens=config.sens,
            obs=self._obs,
        )
        self.history = AdjustmentHistory()
        self.mode = Mode.INIT
        self._pending: Optional[_PendingThreadChange] = None
        self._settle_probes_done = 0
        self._settle_stay_streak = 0
        self._in_settle_probe = False
        self._last_settle_direction: Optional[Direction] = None
        self._stable_baseline: Optional[float] = None
        self._deviation_streak = 0
        self._workload_change_factor = workload_change_factor
        self._workload_change_persistence = workload_change_persistence
        self._mode_log: List[Mode] = []
        # Per-period decision attribution, reset at every step().
        self._rule: Optional[str] = None
        self._detail: str = ""
        self._history_hit = False
        self._satisfaction: Optional[float] = None
        self._last_observed: Optional[float] = None
        # Optional warm-start policy (repro.core.warmstart); None keeps
        # every stock code path byte-identical.
        self._warm = None
        # One-shot trend suppression: the first period after a restart
        # or warm jump compares against a throughput measured under a
        # different configuration, so its trend is reported FLAT
        # instead of misclassifying the jump as a workload trend.
        self._suppress_next_trend = False

    # ------------------------------------------------------------------
    @property
    def current_threads(self) -> int:
        return self.thread_count.current

    @property
    def current_placement(self) -> QueuePlacement:
        return self.threading_model.placement()

    @property
    def is_stable(self) -> bool:
        return self.mode is Mode.STABLE

    def mode_history(self) -> List[Mode]:
        return list(self._mode_log)

    def set_warm_start(self, session) -> None:
        """Install (or clear, with None) the warm-start session.

        The session is consulted at INIT and at every workload-change
        restart; converged operating points are reported back through
        ``session.record``.  See :mod:`repro.core.warmstart`.
        """
        self._warm = session

    # ------------------------------------------------------------------
    def step(self, observed: float) -> CoordinatorAction:
        """Process one adaptation period's throughput observation.

        Exactly one :class:`~repro.obs.decisions.Decision` is emitted
        per call: the branch methods attribute the action to the R1-R5
        search rule or Fig. 7 branch that produced it, and the record
        is written here so no path can skip (or double-count) it.
        """
        self._mode_log.append(self.mode)
        mode_before = self.mode
        self._rule = None
        self._detail = ""
        self._history_hit = False
        self._satisfaction = None
        suppress_trend = self._suppress_next_trend
        self._suppress_next_trend = False
        if self.mode is Mode.INIT:
            action = self._step_init(observed)
        elif self.mode is Mode.THREADING_MODEL:
            action = self._step_threading_model(observed)
        elif self.mode is Mode.THREAD_COUNT:
            action = self._step_thread_count(observed)
        else:
            action = self._step_stable(observed)
        if self._last_observed is None or suppress_trend:
            trend = Trend.FLAT
        else:
            trend = classify_trend(
                self._last_observed, observed, self.config.sens
            )
        self._last_observed = observed
        self._obs.decision(
            component="coordinator",
            mode=mode_before.value,
            rule=self._rule or "F7-HOLD",
            detail=self._detail,
            observed=observed,
            trend=trend.value,
            history_hit=self._history_hit,
            satisfaction=self._satisfaction,
            set_threads=action.set_threads,
            set_n_queues=(
                action.set_placement.n_queues
                if action.set_placement is not None
                else None
            ),
            note=action.note,
        )
        return action

    # ------------------------------------------------------------------
    def _step_init(self, observed: float) -> CoordinatorAction:
        """First observation: profile, then open the initial UP phase
        — or jump straight to a warm-start hint when one is offered."""
        groups = list(self.profile_provider())
        hint = self._warm.hint() if self._warm is not None else None
        if hint is not None:
            return self._apply_warm_hint(
                groups, hint, note="warm start"
            )
        self._rule = "F7-INIT"
        self.threading_model.set_groups(
            groups, self.threading_model.placement()
        )
        step = self.threading_model.begin_phase(Direction.UP, observed)
        return self._emit_tm_step(step, observed, note="initial exploration")

    def _apply_warm_hint(
        self, groups, hint, note: str
    ) -> CoordinatorAction:
        """Seed the controllers from a warm-start hint.

        Model hints (``snap=False``) enter THREAD_COUNT with the
        search anchored at the hinted level, so R1–R5 exploration —
        including the guarded downward probe — corrects model error.
        Phase-store hints (``snap=True``) enter STABLE directly: the
        configuration already converged for this exact phase, and the
        stable-mode deviation monitor catches staleness.
        """
        valid = {m for g in groups for m in g.members}
        queued = [i for i in hint.queued if i in valid]
        self.threading_model.set_groups(groups, QueuePlacement.of(queued))
        placement = self.threading_model.placement()
        level = max(
            self.thread_count.min_threads,
            min(self.thread_count.max_threads, hint.threads),
        )
        self.history.clear()
        if hint.thread_range is not None:
            lo, hi = hint.thread_range
            self.history.seed_entry(
                placement, min(lo, level), max(hi, level)
            )
        else:
            self.history.create_entry(placement, level)
        self.thread_count.warm_start(level, settled=hint.snap)
        self._pending = None
        self._settle_probes_done = 0
        self._settle_stay_streak = 0
        self._last_settle_direction = None
        self._deviation_streak = 0
        self._suppress_next_trend = True
        self._detail = _join_detail(self._detail, f"warm-{hint.source}")
        if hint.snap:
            self.mode = Mode.STABLE
            # The recorded throughput is the baseline the deviation
            # monitor holds the snap to: a stale snap (the phase
            # changed under the same key) under-delivers immediately
            # and restarts, instead of silently re-baselining at the
            # degraded level.  Hints without an expectation fall back
            # to first-period baselining.
            self._stable_baseline = hint.expected_throughput
            self._rule = "F7-WARM-SNAP"
        else:
            self.mode = Mode.THREAD_COUNT
            self._stable_baseline = None
            self._rule = "F7-WARM-START"
        return CoordinatorAction(
            set_placement=placement, set_threads=level, note=note
        )

    # ------------------------------------------------------------------
    def _step_threading_model(self, observed: float) -> CoordinatorAction:
        step = self.threading_model.step(observed)
        self._rule = self.threading_model.last_rule
        return self._emit_tm_step(step, observed)

    def _emit_tm_step(
        self, step: Step, observed: float, note: str = ""
    ) -> CoordinatorAction:
        if not step.done:
            self.mode = Mode.THREADING_MODEL
            if self._rule is None:
                self._rule = self.threading_model.last_rule
            return CoordinatorAction(
                set_placement=step.placement,
                note=note or "threading model trial",
            )
        if self._rule is None or self._rule in ("F7-TM-BEGIN",):
            self._rule = "F7-TM-SETTLED"
        self._detail = _join_detail(
            self._detail, f"tm-{step.decision.value}"
        )
        # Phase finished: bookkeeping per Fig. 7 lines 18-22.
        level = self.thread_count.current
        if self._in_settle_probe:
            self._in_settle_probe = False
            if step.decision is AdjustDecision.STAY:
                self._settle_stay_streak += 1
            else:
                self._settle_stay_streak = 0
        if step.decision is AdjustDecision.CHANGE:
            self.history.create_entry(step.placement, level)
            # The placement changed, so the previously optimal thread
            # count is stale: resume the primary adjustment ("we switch
            # back to the thread count elasticity phase").  Without
            # this, a thread controller that settled under the old
            # placement would never exploit the parallelism the new
            # queues expose.
            self.thread_count.reset()
            self._settle_probes_done = 0
            self._last_settle_direction = None
        elif self.history.last is not None:
            self.history.update_entry(level)
        else:
            # A STAY on the very first exploration: the empty placement
            # is the record.
            self.history.create_entry(step.placement, level)
        self.mode = Mode.THREAD_COUNT
        self.thread_count.rebase(observed)
        return CoordinatorAction(
            set_placement=step.placement,
            note=f"threading model settled ({step.decision.value})",
        )

    # ------------------------------------------------------------------
    def _step_thread_count(self, observed: float) -> CoordinatorAction:
        # 1. Evaluate the previous thread change (satisfaction factor +
        #    history), possibly triggering the secondary adjustment.
        pending, self._pending = self._pending, None
        if pending is not None:
            direction = self._secondary_direction(pending, observed)
            if direction is not Direction.NONE:
                self._rule = f"F7-SECONDARY-{direction.value.upper()}"
                step = self.threading_model.begin_phase(direction, observed)
                return self._emit_tm_step(
                    step,
                    observed,
                    note=f"secondary adjustment ({direction.value})",
                )

        # 2. Continue the primary (thread count) adjustment.
        prev_level = self.thread_count.current
        new_level = self.thread_count.propose(observed)
        if new_level is not None:
            self._rule = "F7-THREAD-COUNT"
            self._detail = _join_detail(
                self._detail, self.thread_count.last_rule
            )
            self._pending = _PendingThreadChange(
                prev_threads=prev_level,
                new_threads=new_level,
                prev_throughput=observed,
            )
            self._settle_probes_done = 0
            self._settle_stay_streak = 0
            self._last_settle_direction = None
            return CoordinatorAction(
                set_threads=new_level, note="thread count adjustment"
            )

        if self.thread_count.settled:
            # The iterative refinement only terminates when *neither*
            # component can improve.  Before declaring stability, give
            # the threading model final passes at the settled thread
            # count: first in the direction the history record
            # suggests, then once in the opposite direction (a STAY in
            # one direction does not rule out gains in the other).
            if (
                self._settle_stay_streak < 2
                and self._settle_probes_done < 6
            ):
                level = self.thread_count.current
                if self._last_settle_direction is None:
                    if self.config.use_history:
                        direction = self.history.direction_for(level)
                        if direction is Direction.NONE:
                            # The record already validates this level;
                            # still explore upward once before
                            # stabilizing.
                            direction = Direction.UP
                    else:
                        direction = Direction.UP
                else:
                    # Alternate directions: a STAY in one direction
                    # does not rule out gains in the other, and each
                    # probe re-randomizes group subsets.
                    direction = (
                        Direction.DOWN
                        if self._last_settle_direction is Direction.UP
                        else Direction.UP
                    )
                self._settle_probes_done += 1
                self._last_settle_direction = direction
                self._in_settle_probe = True
                self._rule = "F7-SETTLE-PROBE"
                self._detail = _join_detail(
                    self._detail, f"probe-{direction.value}"
                )
                step = self.threading_model.begin_phase(
                    direction, observed
                )
                return self._emit_tm_step(
                    step,
                    observed,
                    note=f"settle probe ({direction.value})",
                )
            self.mode = Mode.STABLE
            self._stable_baseline = observed
            self._deviation_streak = 0
            self._rule = "F7-SETTLED"
            self._record_converged(observed)
            return CoordinatorAction(note="settled")
        self._rule = "F7-HOLD"
        return CoordinatorAction(note="thread count holding")

    def _secondary_direction(
        self, pending: _PendingThreadChange, observed: float
    ) -> Direction:
        """Decide whether/which way to run the secondary adjustment."""
        if self.config.use_satisfaction_factor:
            sample = SatisfactionSample(
                prev_throughput=pending.prev_throughput,
                curr_throughput=observed,
                prev_threads=pending.prev_threads,
                new_threads=pending.new_threads,
            )
            self._satisfaction = measured_satisfaction(sample)
            if should_skip_secondary(
                sample, self.config.satisfaction_threshold
            ):
                self._detail = _join_detail(self._detail, "sf-skip")
                return Direction.NONE
        if self.config.use_history:
            direction = self.history.direction_for(pending.new_threads)
            if direction is Direction.NONE:
                self._history_hit = True
                self._detail = _join_detail(self._detail, "history-skip")
            return direction
        # No history optimization: always explore, in the direction the
        # thread count moved (Fig. 6(a) behaviour: every thread change
        # triggers threading model elasticity).
        if pending.new_threads >= pending.prev_threads:
            return Direction.UP
        return Direction.DOWN

    # ------------------------------------------------------------------
    def _step_stable(self, observed: float) -> CoordinatorAction:
        """Monitor for workload change (Fig. 13)."""
        self._rule = "F7-STABLE"
        baseline = self._stable_baseline
        if baseline is None or baseline == 0.0:
            self._stable_baseline = observed
            return CoordinatorAction(note="stable")
        threshold = self._workload_change_factor * self.config.sens
        deviation = abs(observed / baseline - 1.0)
        if deviation > threshold:
            self._deviation_streak += 1
            if self._deviation_streak >= self._workload_change_persistence:
                return self._restart(observed)
        else:
            self._deviation_streak = 0
            # Slow EWMA drift of the baseline.
            self._stable_baseline = 0.9 * baseline + 0.1 * observed
        return CoordinatorAction(note="stable")

    def _record_converged(self, observed: float) -> None:
        """Report a settled operating point to the warm-start session."""
        if self._warm is None:
            return
        record = self.history.last
        thread_range = (
            (record.min_threads, record.max_threads)
            if record is not None
            else None
        )
        self._warm.record(
            threads=self.thread_count.current,
            queued=tuple(sorted(self.current_placement.queued)),
            throughput=observed,
            thread_range=thread_range,
        )

    def _restart(self, observed: float) -> CoordinatorAction:
        """Workload change detected: re-profile and re-explore.

        With a warm-start session installed, the new phase may be one
        the phase store has seen (or the model can predict) — then the
        restart jumps straight to the hinted operating point instead
        of re-exploring from the current state.
        """
        self._rule = "F7-WORKLOAD-CHANGE"
        self._deviation_streak = 0
        self._stable_baseline = None
        self._settle_probes_done = 0
        self._settle_stay_streak = 0
        self._last_settle_direction = None
        groups = list(self.profile_provider())
        hint = self._warm.hint() if self._warm is not None else None
        if hint is not None:
            return self._apply_warm_hint(
                groups, hint, note="workload change (warm)"
            )
        self.threading_model.set_groups(
            groups, self.threading_model.placement()
        )
        self.history.clear()
        self.thread_count.reset()
        # The reset re-anchors the search at the current level; the
        # first period after the restart measures under the same
        # configuration but a changed workload, so its trend would
        # misread the workload shift as a search result.
        self._suppress_next_trend = True
        self.mode = Mode.THREAD_COUNT
        step = self.threading_model.begin_phase(Direction.UP, observed)
        return self._emit_tm_step(step, observed, note="workload change")
