"""Threading model elasticity (§3.1): choose dynamic vs manual per operator.

Given ``N`` operators the configuration space has ``2^N`` members; the
paper reduces the search to linear time with two observations:

- **(O1)** expensive operators benefit from the dynamic model first, so
  exploration proceeds group-by-group in descending cost order;
- **(O2)** operators with similar cost react similarly, so adjustment
  granularity is the *profiling group* (logarithmic cost bins), not the
  individual operator.

Within a group the controller runs the trend-guided adaptive search of
Fig. 3/Fig. 4 (rules R1-R5), realized as a two-sided bisection
hill-climb (see :class:`_GroupSearch`).  Which members are dynamic at a
given count is "an arbitrary set of N from within the group": each
probe re-draws the members it adds (or drops) at random *relative to
the current anchor subset*.  The anchoring keeps comparisons stable;
the re-randomization lets the search escape plateaus where only one
specific operator (e.g. the one splitting the bottleneck region)
unlocks further gains — the paper observes that exactly this randomness
helps settling time at negligible disturbance (§3.1.1).

A *phase* is one activation by the coordinator, with a direction:
``Direction.UP`` adds queues starting from the heaviest non-saturated
group, ``Direction.DOWN`` removes queues starting from the lightest
queued group ("the same algorithm is used in the reverse order").  A
phase visits every eligible group in that order, settling each on its
best SENS-significant count; the phase's final configuration is the
best SENS-significant placement observed anywhere in the phase (a trial
that did not significantly win is reverted — Fig. 5(f)).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs.hub import Obs, ensure_hub
from ..runtime.queues import QueuePlacement
from .binning import ProfilingGroup
from .history import Direction
from .metrics import significantly_better


class AdjustDecision(enum.Enum):
    """Fig. 4's AdjustDecision enum."""

    CONTINUE = "continue"
    STAY = "stay"
    CHANGE = "change"


@dataclass(frozen=True)
class Step:
    """Outcome of one controller step.

    ``decision is None`` means CONTINUE: apply ``placement`` for the
    next adaptation period and feed the resulting observation back via
    :meth:`ThreadingModelElasticity.step`.  A non-None decision ends
    the phase; ``placement`` then carries the final configuration.
    """

    placement: QueuePlacement
    decision: Optional[AdjustDecision] = None

    @property
    def done(self) -> bool:
        return self.decision is not None


@dataclass
class _GroupSearch:
    """Two-sided bisection hill-climb state within one profiling group.

    ``anchor`` is the best-known count (measured).  Two unexplored
    intervals surround it: toward ``fwd`` (the phase's target — the
    whole group for UP, zero for DOWN) and toward ``back`` (left behind
    when the anchor last advanced; a successful jump from *a* to *p*
    proves ``f(p) > f(a)`` but the optimum may still lie inside
    ``(a, p)``).  Each probe takes the midpoint of one interval,
    rounded toward its boundary:

    - probe significantly better than the anchor -> move the anchor
      there; the skipped-over interval becomes the new opposite bound
      (rules R1/R2 forward, R3/R4 backward);
    - otherwise -> pull that boundary in to the probe;
    - both intervals exhausted -> stop (R5); if the anchor reached the
      group target with an improving trend, the whole group profits and
      exploration continues with the next group (Fig. 4 lines 4-6).

    ``measurements`` maps each probed count to the throughput observed
    AND the exact member subset that produced it, so settling can
    restore the winning subset (subsets are re-drawn per probe).
    """

    group_index: int
    baseline_count: int
    anchor: int
    fwd: int
    back: int
    mode: str = "fwd"
    measurements: Dict[int, Tuple[float, Tuple[int, ...]]] = field(
        default_factory=dict
    )

    @property
    def anchor_throughput(self) -> float:
        return self.measurements[self.anchor][0]

    @staticmethod
    def _midpoint(anchor: int, boundary: int) -> int:
        """Midpoint rounded toward the boundary (guarantees progress)."""
        if boundary > anchor:
            return (anchor + boundary + 1) // 2
        return (anchor + boundary) // 2

    def next_probe(self) -> Optional[int]:
        """Pick the next unmeasured interior count, or None when done."""
        order = (
            ("fwd", "back") if self.mode == "fwd" else ("back", "fwd")
        )
        for mode in order:
            boundary = self.fwd if mode == "fwd" else self.back
            if boundary == self.anchor:
                continue
            probe = self._midpoint(self.anchor, boundary)
            if probe == self.anchor or probe in self.measurements:
                continue
            self.mode = mode
            return probe
        return None


class ThreadingModelElasticity:
    """Elastic controller for per-operator threading model choice."""

    def __init__(
        self,
        seed: int = 0,
        sens: float = 0.05,
        obs: Optional[Obs] = None,
    ) -> None:
        self.sens = sens
        #: Search rule applied by the most recent begin_phase()/step():
        #: one of R1-R5 (Fig. 3/4) or "F7-TM-BEGIN" for a phase's first
        #: probe.  The coordinator copies this into its Decision record.
        self.last_rule: Optional[str] = None
        hub = ensure_hub(obs)
        self._m_phases = hub.registry.counter(
            "tm.phases", "threading-model exploration phases begun"
        )
        self._m_probes = hub.registry.counter(
            "tm.probes", "trial placements issued by the group search"
        )
        self._m_anchor_moves = hub.registry.counter(
            "tm.anchor_moves", "probes that displaced a group anchor"
        )
        self._m_group_settles = hub.registry.counter(
            "tm.group_settles", "groups settled via rule R5"
        )
        self._rng = np.random.default_rng(seed)
        self._groups: List[ProfilingGroup] = []
        self._orders: List[List[int]] = []
        self._counts: List[int] = []
        self._phase_active = False
        self._direction = Direction.UP
        self._queue_order: List[int] = []
        self._queue_pos = 0
        self._search: Optional[_GroupSearch] = None
        self._phase_start_placement = QueuePlacement.empty()
        self._best_placement = QueuePlacement.empty()
        self._best_throughput = 0.0

    # ------------------------------------------------------------------
    # group management
    # ------------------------------------------------------------------
    def set_groups(
        self,
        groups: Sequence[ProfilingGroup],
        current_placement: Optional[QueuePlacement] = None,
    ) -> None:
        """Install (re-)profiled groups, preserving the current placement.

        Members already queued are moved to the front of each group's
        selection order so the implied placement is unchanged.
        """
        self._groups = list(groups)
        self._orders = []
        self._counts = []
        queued = (
            set(current_placement.queued) if current_placement else set()
        )
        for group in self._groups:
            members = list(group.members)
            self._rng.shuffle(members)
            already = [m for m in members if m in queued]
            rest = [m for m in members if m not in queued]
            self._orders.append(already + rest)
            self._counts.append(len(already))
        self._phase_active = False
        self._search = None

    @property
    def groups(self) -> Tuple[ProfilingGroup, ...]:
        return tuple(self._groups)

    @property
    def counts(self) -> Tuple[int, ...]:
        return tuple(self._counts)

    def placement(self) -> QueuePlacement:
        """Current placement implied by the per-group counts."""
        queued: List[int] = []
        for order, count in zip(self._orders, self._counts):
            queued.extend(order[:count])
        return QueuePlacement.of(queued)

    # ------------------------------------------------------------------
    # phase control
    # ------------------------------------------------------------------
    @property
    def phase_active(self) -> bool:
        return self._phase_active

    def begin_phase(
        self, direction: Direction, baseline_throughput: float
    ) -> Step:
        """Start an exploration phase; returns the first trial step.

        If there is nothing to explore in the requested direction the
        phase completes immediately with decision STAY.
        """
        if direction is Direction.NONE:
            raise ValueError("begin_phase requires UP or DOWN")
        self.last_rule = "F7-TM-BEGIN"
        self._m_phases.inc()
        self._direction = direction
        self._phase_start_placement = self.placement()
        self._best_placement = self._phase_start_placement
        self._best_throughput = baseline_throughput
        if direction is Direction.UP:
            order = [
                gi
                for gi in range(len(self._groups))
                if self._counts[gi] < len(self._groups[gi])
            ]
        else:
            order = [
                gi
                for gi in reversed(range(len(self._groups)))
                if self._counts[gi] > 0
            ]
        self._queue_order = order
        self._queue_pos = 0
        if not order:
            self._phase_active = False
            return Step(self.placement(), AdjustDecision.STAY)
        self._phase_active = True
        return self._start_group(baseline_throughput)

    def _start_group(self, baseline_throughput: float) -> Step:
        gi = self._queue_order[self._queue_pos]
        c0 = self._counts[gi]
        size = len(self._groups[gi])
        target = size if self._direction is Direction.UP else 0
        search = _GroupSearch(
            group_index=gi,
            baseline_count=c0,
            anchor=c0,
            fwd=target,
            back=c0,
        )
        search.measurements[c0] = (
            baseline_throughput,
            tuple(self._orders[gi][:c0]),
        )
        self._search = search
        probe = search.next_probe()
        if probe is None:  # degenerate group (already at target)
            return self._next_group_or_finish(search, baseline_throughput)
        self._apply_probe(search, probe)
        return Step(self.placement())

    # ------------------------------------------------------------------
    def _apply_probe(self, search: _GroupSearch, probe: int) -> None:
        """Set group count to ``probe`` with a fresh arbitrary subset.

        Members are drawn relative to the anchor subset: growing keeps
        the anchor's members and samples the additions from the
        remainder; shrinking keeps a random subset of the anchor's
        members.  The anchor subset itself (the first ``anchor``
        entries) is never disturbed, so comparisons stay anchored.
        """
        gi = search.group_index
        order = self._orders[gi]
        a = search.anchor
        if probe > a:
            tail = order[a:]
            self._rng.shuffle(tail)
            order[a:] = tail
        elif probe < a:
            head = order[:a]
            self._rng.shuffle(head)
            order[:a] = head
        self._counts[gi] = probe
        self._m_probes.inc()

    # ------------------------------------------------------------------
    def step(self, observed: float) -> Step:
        """Feed the throughput observed under the last trial placement."""
        if not self._phase_active or self._search is None:
            raise RuntimeError("step() called outside an active phase")
        search = self._search
        gi = search.group_index
        probe = self._counts[gi]
        search.measurements[probe] = (
            observed,
            tuple(self._orders[gi][:probe]),
        )
        self._note_best(observed)

        if significantly_better(
            observed, search.anchor_throughput, self.sens
        ):
            old_anchor = search.anchor
            search.anchor = probe
            self.last_rule = "R1" if search.mode == "fwd" else "R3"
            self._m_anchor_moves.inc()
            # The probe's subset becomes the anchor subset; it already
            # occupies order[:probe].
            if search.mode == "fwd":
                search.back = old_anchor
            else:
                search.fwd = old_anchor
        else:
            self.last_rule = "R2" if search.mode == "fwd" else "R4"
            if search.mode == "fwd":
                search.fwd = probe
            else:
                search.back = probe
            # Revert the selection to the anchor's subset for the next
            # comparison (anchor members are order[:anchor] either way;
            # just restore the count).
            restored = search.measurements[search.anchor][1]
            self._restore_subset(gi, restored)

        target = (
            len(self._groups[gi]) if self._direction is Direction.UP else 0
        )
        if search.anchor == target and search.baseline_count != target:
            self._counts[gi] = search.anchor
            return self._next_group_or_finish(search, observed)

        next_probe = search.next_probe()
        if next_probe is None:
            # R5: both intervals exhausted around the anchor.
            return self._settle_group(search)
        self._apply_probe(search, next_probe)
        return Step(self.placement())

    def _restore_subset(self, gi: int, subset: Tuple[int, ...]) -> None:
        """Put ``subset`` at the front of group gi's order, count-aligned."""
        order = self._orders[gi]
        chosen = list(subset)
        rest = [m for m in order if m not in set(subset)]
        self._orders[gi] = chosen + rest
        self._counts[gi] = len(chosen)

    def _settle_group(self, search: _GroupSearch) -> Step:
        """Fix the group on its best SENS-significant (count, subset)
        and continue with the next group."""
        self.last_rule = "R5"
        self._m_group_settles.inc()
        gi = search.group_index
        base_t, base_subset = search.measurements[search.baseline_count]
        best_count, (best_t, best_subset) = (
            search.baseline_count,
            (base_t, base_subset),
        )
        for count, (throughput, subset) in search.measurements.items():
            if significantly_better(throughput, best_t, self.sens):
                best_count, best_t, best_subset = count, throughput, subset
        self._restore_subset(gi, best_subset)
        self._note_best(best_t)
        return self._next_group_or_finish(search, best_t)

    def _next_group_or_finish(
        self, search: _GroupSearch, throughput: float
    ) -> Step:
        self._queue_pos += 1
        if self._queue_pos < len(self._queue_order):
            return self._start_group(throughput)
        return self._finish_phase()

    # ------------------------------------------------------------------
    def _note_best(self, observed: float) -> None:
        """Track the best placement, SENS-gated.

        A candidate only displaces the incumbent when *significantly*
        better; otherwise measurement noise could latch a flat
        configuration as "best" and the phase would end with a spurious
        CHANGE (violating stability).
        """
        if significantly_better(observed, self._best_throughput, self.sens):
            self._best_throughput = observed
            self._best_placement = self.placement()

    def _finish_phase(self) -> Step:
        """Restore the best placement seen and emit the decision."""
        queued = set(self._best_placement.queued)
        for gi, group in enumerate(self._groups):
            members_in = [m for m in self._orders[gi] if m in queued]
            members_out = [
                m for m in self._orders[gi] if m not in queued
            ]
            self._orders[gi] = members_in + members_out
            self._counts[gi] = len(members_in)
        self._phase_active = False
        self._search = None
        changed = (
            self._best_placement.queued
            != self._phase_start_placement.queued
        )
        decision = (
            AdjustDecision.CHANGE if changed else AdjustDecision.STAY
        )
        return Step(self.placement(), decision)
