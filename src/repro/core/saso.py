"""SASO property analysis over adaptation traces (§1, §4.4).

The paper's control algorithm claims the classic SASO guarantees from
feedback control of computing systems (Hellerstein et al.):

- **Stability** — no oscillation between configurations once settled;
- **Accuracy** — the converged throughput is close to the best
  achievable configuration;
- **Settling time** — a stable configuration is reached quickly;
- **Overshoot avoidance** — no more threads are used than necessary.

This module turns those informal claims into measurable properties of
an :class:`~repro.runtime.events.AdaptationTrace`, so benchmarks and
tests can assert them the way §4.4 argues them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..runtime.events import AdaptationTrace


@dataclass(frozen=True)
class SasoReport:
    """Quantified SASO properties of one adaptation run."""

    stability_oscillations: int
    stability_ok: bool
    accuracy_ratio: Optional[float]
    settling_time_s: float
    settled_fraction: float
    overshoot_threads: int
    max_threads_used: int
    final_threads: int

    def summary(self) -> str:
        acc = (
            f"{self.accuracy_ratio:.2f}"
            if self.accuracy_ratio is not None
            else "n/a"
        )
        return (
            f"stability: {self.stability_oscillations} oscillations "
            f"({'ok' if self.stability_ok else 'VIOLATED'}) | "
            f"accuracy: {acc} of reference | "
            f"settling: {self.settling_time_s:.0f}s "
            f"({self.settled_fraction:.0%} of run settled) | "
            f"overshoot: max {self.max_threads_used} vs final "
            f"{self.final_threads} threads (+{self.overshoot_threads})"
        )


def count_oscillations(
    series: Sequence[Tuple[float, int]], after_s: float
) -> int:
    """Count repeated returns to configuration values after ``after_s``.

    The "no oscillation between adjustments" criterion tolerates the
    explore-and-revert pattern — a controller may try a value once and
    come back (two visits: the stay before/after the excursion).  A
    value visited a *third* time indicates ping-ponging between
    configurations that past observations should have ruled out.
    Values observed during the exploration window (before ``after_s``)
    are exempt.
    """
    visits: dict = {}
    current: Optional[int] = None
    for time_s, value in series:
        if time_s < after_s:
            continue
        if value != current:
            visits[value] = visits.get(value, 0) + 1
            current = value
    return sum(max(0, n - 2) for n in visits.values())


def analyze(
    trace: AdaptationTrace,
    reference_throughput: Optional[float] = None,
    settle_tolerance: float = 0.05,
) -> SasoReport:
    """Compute the SASO report for ``trace``.

    ``reference_throughput`` is the best known throughput for the same
    workload (e.g. an oracle sweep or hand-optimized configuration); the
    accuracy ratio is ``converged / reference``.
    """
    settling = trace.settling_time(tolerance=settle_tolerance)
    duration = trace.duration_s
    settled_fraction = (
        1.0 - settling / duration if duration > 0 else 0.0
    )

    # Stability: once settled, neither threads nor queue counts should
    # revisit abandoned values.
    thread_osc = count_oscillations(trace.thread_series(), settling)
    queue_osc = count_oscillations(trace.queue_series(), settling)
    oscillations = thread_osc + queue_osc

    converged = trace.final_throughput()
    accuracy = (
        converged / reference_throughput
        if reference_throughput
        else None
    )

    final_threads = trace.final_threads()
    max_threads = trace.max_threads_used()
    overshoot = max(0, max_threads - final_threads)

    return SasoReport(
        stability_oscillations=oscillations,
        stability_ok=oscillations == 0,
        accuracy_ratio=accuracy,
        settling_time_s=settling,
        settled_fraction=settled_fraction,
        overshoot_threads=overshoot,
        max_threads_used=max_threads,
        final_threads=final_threads,
    )
