"""Satisfaction factor (§3.3, second optimization).

"If the primary adjustment (thread count) alone can improve the
performance by a significant amount, the secondary adjustment (threading
model) can be skipped unless the thread count alters again."

The paper's skip condition is::

    (currThroughput / prevThroughput - 1) > sf * (newThreadCount / prevThreadCount - 1)

We expose the measured satisfaction factor as the ratio of relative
throughput gain to relative thread gain; the coordinator compares it to
the configured threshold THRE:

- measured sf >= THRE  -> thread count change already "paid for itself";
  skip the threading model adjustment,
- measured sf <  THRE  -> the gain was disappointing; consult the
  history record and possibly run the threading model elasticity.

With THRE = 0 the secondary adjustment only triggers when throughput
*drops* as threads increase (the paper's Fig. 6(d) behaviour); with
THRE = 1 it triggers unless throughput scaled at least linearly with
threads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SatisfactionSample:
    """Inputs of one satisfaction evaluation."""

    prev_throughput: float
    curr_throughput: float
    prev_threads: int
    new_threads: int

    def __post_init__(self) -> None:
        if self.prev_threads < 1 or self.new_threads < 1:
            raise ValueError("thread counts must be >= 1")
        if self.prev_throughput < 0 or self.curr_throughput < 0:
            raise ValueError("throughputs must be >= 0")


def measured_satisfaction(sample: SatisfactionSample) -> float:
    """Relative throughput gain per relative thread gain.

    Returns ``+inf`` when threads did not change but throughput improved
    (free win — certainly satisfied) and ``-inf`` when threads did not
    change but throughput dropped.
    """
    if sample.prev_throughput == 0.0:
        return math.inf if sample.curr_throughput > 0.0 else 0.0
    perf_gain = sample.curr_throughput / sample.prev_throughput - 1.0
    thread_gain = sample.new_threads / sample.prev_threads - 1.0
    if thread_gain == 0.0:
        if perf_gain > 0.0:
            return math.inf
        if perf_gain < 0.0:
            return -math.inf
        return 0.0
    return perf_gain / thread_gain


def should_skip_secondary(
    sample: SatisfactionSample, threshold: float
) -> bool:
    """True when the threading model adjustment should be skipped.

    Implements the paper's inequality.  For thread *decreases* the
    relative thread gain is negative; dividing flips the inequality, so
    we evaluate the paper's original form directly instead of comparing
    the ratio: skip iff ``perf_gain > threshold * thread_gain``.
    """
    if sample.prev_throughput == 0.0:
        return sample.curr_throughput > 0.0
    perf_gain = sample.curr_throughput / sample.prev_throughput - 1.0
    thread_gain = sample.new_threads / sample.prev_threads - 1.0
    return perf_gain > threshold * thread_gain
