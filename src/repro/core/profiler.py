"""Sampling profiler producing the operator cost metric (§3).

The real runtime registers a per-thread state variable holding the index
of the operator the thread is currently executing; a profiler thread
wakes up every profiling period, snapshots all running threads and
increments a counter per observed operator.  "This counter directly
correlates with the relative operator cost."

In the simulated substrate the probability of catching a thread inside
operator *i* is proportional to the fraction of total execution time
spent there: ``rate_i * exec_time_i``.  We draw a multinomial sample of
``n_samples`` snapshots from that distribution, which reproduces both
the signal (relative cost) and the estimation noise (finite samples) of
the real profiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..graph.model import StreamGraph
from ..obs.hub import Obs, ensure_hub
from ..perfmodel.machine import MachineProfile


@dataclass(frozen=True)
class CostProfile:
    """Result of one profiling pass: operator index -> cost metric.

    The metric is a snapshot *count* for the simulated and
    snapshot-based profilers, but any non-negative number works — the
    binning layer only consumes ratios, so analytically-derived float
    weights (e.g. sampled-accounting attributions scaled by segment
    duration) are equally valid metrics.
    """

    counts: Tuple[Tuple[int, float], ...]
    n_samples: int

    def as_dict(self) -> Dict[int, float]:
        return dict(self.counts)

    def metric(self, op_index: int) -> float:
        for idx, count in self.counts:
            if idx == op_index:
                return count
        raise KeyError(f"operator {op_index} not in profile")

    def nonzero(self) -> Dict[int, float]:
        return {idx: c for idx, c in self.counts if c > 0}


class SamplingProfiler:
    """Simulated profiler thread.

    Parameters
    ----------
    machine:
        Used to convert FLOPs to execution time (the snapshot catches
        threads in proportion to *time*, not FLOPs; for uniform-cost
        graphs they coincide).
    n_samples:
        Snapshots per profiling pass.  The paper's profiler accumulates
        counters over the profiling period; more samples mean a less
        noisy metric.
    seed:
        Seeds the multinomial draw for reproducibility.
    """

    def __init__(
        self,
        machine: MachineProfile,
        n_samples: int = 200,
        seed: int = 0,
        obs: Optional[Obs] = None,
    ) -> None:
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        self.machine = machine
        self.n_samples = n_samples
        self._rng = np.random.default_rng(seed)
        hub = ensure_hub(obs)
        self._m_passes = hub.registry.counter(
            "profiler.passes", "profiling passes taken"
        )
        self._m_nonzero = hub.registry.histogram(
            "profiler.nonzero_ops",
            bounds=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
            description="operators with nonzero samples per pass",
        )

    def expected_weights(self, graph: StreamGraph) -> Dict[int, float]:
        """Noise-free sampling weights: rate_i * exec_time_i.

        Exposed separately so tests can verify the sampled profile
        converges to this distribution.
        """
        rates = graph.arrival_rates()
        weights: Dict[int, float] = {}
        for op in graph:
            exec_time = self.machine.flop_time(op.cost_flops)
            weights[op.index] = rates[op.index] * exec_time
        return weights

    def profile(self, graph: StreamGraph) -> CostProfile:
        """Take one profiling pass over the (simulated) running PE."""
        weights = self.expected_weights(graph)
        indices = sorted(weights)
        w = np.array([weights[i] for i in indices], dtype=float)
        total = w.sum()
        if total <= 0.0:
            counts = np.zeros(len(indices), dtype=int)
        else:
            probs = w / total
            counts = self._rng.multinomial(self.n_samples, probs)
        self._m_passes.inc()
        self._m_nonzero.observe(int((counts > 0).sum()))
        return CostProfile(
            counts=tuple(
                (idx, int(c)) for idx, c in zip(indices, counts)
            ),
            n_samples=self.n_samples,
        )
