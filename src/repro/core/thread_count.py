"""Thread count elasticity (the pre-existing component, after [20]).

Re-implementation of the level-based elastic thread scheduler the paper
inherits from Streams 4.2 (Schneider & Wu, PLDI '17): the controller
monitors total throughput and adjusts the number of scheduler threads to
maximize it.

Search strategy:

1. **EXPLORE** — geometric ascent.  Starting from the minimum thread
   count, double the count while each change yields a significant
   (> SENS) throughput improvement, capping at the maximum.  If the
   first probe after a restart degrades, probe downward once before
   refining (workloads can shrink, Fig. 13 in reverse).
2. **REFINE** — binary search between the last good and the first bad
   level, until the step is within the refinement granularity
   (max(1, 10 % of the level), so large counts don't dither thread by
   thread — matching the paper's coarse final adjustments, e.g.
   96 -> 80).
3. **SETTLED** — propose no changes until the coordinator resets the
   controller (workload change detected).

The controller is event-driven: :meth:`propose` is called once per
adaptation period with the throughput observed under the *current*
count and returns the next count to try, or ``None`` when settled.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from ..obs.hub import Obs, ensure_hub
from .metrics import significantly_better


class _Phase(enum.Enum):
    EXPLORE = "explore"
    PROBE_DOWN = "probe_down"
    REFINE = "refine"
    SETTLED = "settled"


class ThreadCountElasticity:
    """Elastic controller for the number of scheduler threads."""

    def __init__(
        self,
        min_threads: int = 1,
        max_threads: int = 16,
        initial_threads: Optional[int] = None,
        sens: float = 0.05,
        obs: Optional[Obs] = None,
    ) -> None:
        if min_threads < 1:
            raise ValueError(f"min_threads must be >= 1, got {min_threads}")
        if max_threads < min_threads:
            raise ValueError(
                f"max_threads ({max_threads}) < min_threads ({min_threads})"
            )
        self.min_threads = min_threads
        self.max_threads = max_threads
        self.sens = sens
        self.level = (
            initial_threads if initial_threads is not None else min_threads
        )
        if not min_threads <= self.level <= max_threads:
            raise ValueError(
                f"initial_threads {self.level} outside "
                f"[{min_threads}, {max_threads}]"
            )
        self._phase = _Phase.EXPLORE
        self._measurements: Dict[int, float] = {}
        self._prev_level: Optional[int] = None
        self._refine_lo = self.min_threads
        self._refine_hi = self.max_threads
        # A non-minimal start is an implicit anchor: the guarded
        # downward probe (see propose) only fires above a non-None
        # anchor, so without this a search seeded above min_threads
        # could *never* correct downward — the cold-start asymmetry
        # documented in coordinator.py.  A minimal start keeps the
        # anchor None: nothing below it to probe, byte-identical to
        # the historical behaviour.
        self._restart_anchor: Optional[int] = (
            self.level if self.level > self.min_threads else None
        )
        #: What the most recent propose() did, e.g. "explore:4->8",
        #: "refine:12->10", "settle:8", "hold".  Consumed by the
        #: coordinator's Decision records as the `detail` field.
        self.last_rule: str = ""
        hub = ensure_hub(obs)
        self._m_proposals = hub.registry.counter(
            "tc.proposals", "thread-count changes proposed"
        )
        self._m_settles = hub.registry.counter(
            "tc.settles", "thread-count searches settled"
        )
        self._m_resets = hub.registry.counter(
            "tc.resets", "thread-count searches restarted"
        )

    # ------------------------------------------------------------------
    @property
    def settled(self) -> bool:
        return self._phase is _Phase.SETTLED

    @property
    def current(self) -> int:
        return self.level

    def measurement(self, level: int) -> Optional[float]:
        return self._measurements.get(level)

    # ------------------------------------------------------------------
    def rebase(self, throughput: float) -> None:
        """Refresh the measurement at the current level.

        Called by the coordinator after a threading model change: older
        measurements were taken under a different placement and must not
        dominate comparisons.
        """
        self._measurements[self.level] = throughput

    def reset(self) -> None:
        """Restart exploration from the current level (workload change)."""
        self._phase = _Phase.EXPLORE
        self._measurements.clear()
        self._prev_level = None
        self._restart_anchor = self.level
        self._m_resets.inc()

    def warm_start(self, level: int, settled: bool = False) -> None:
        """Re-anchor the search at an externally seeded level.

        Like :meth:`reset`, but the level comes from outside — a
        perfmodel prediction or a phase-store record — rather than
        from wherever the previous search left off.  The seeded level
        becomes the restart anchor, which arms the guarded downward
        probe: if the first exploration step up degrades, the search
        probes below the seed instead of settling on an overshooting
        prediction.  ``settled=True`` trusts the seed outright (phase
        snap-back); the coordinator's stable-mode deviation monitor
        remains the correction path.
        """
        level = max(self.min_threads, min(self.max_threads, level))
        self.level = level
        self._measurements.clear()
        self._prev_level = None
        self._restart_anchor = (
            level if level > self.min_threads else None
        )
        self._phase = _Phase.SETTLED if settled else _Phase.EXPLORE
        self.last_rule = f"warm:{level}"

    # ------------------------------------------------------------------
    def _granularity(self, level: int) -> int:
        return max(1, round(level * 0.1))

    def _next_up(self, level: int) -> int:
        return min(self.max_threads, max(level + 1, level * 2))

    def _knee_level(self) -> int:
        """Lowest measured level within SENS of the best measurement."""
        best = max(self._measurements.values())
        return min(
            lv
            for lv, t in self._measurements.items()
            if not significantly_better(best, t, self.sens)
        )

    def _settle_at_best(self) -> Optional[int]:
        """Settle on the LOWEST level within SENS of the best measured.

        Picking the raw argmax would burn threads for statistically
        insignificant gains; choosing the smallest equivalent level is
        the SASO overshoot-avoidance property ("does not use more
        threads than necessary").
        """
        best_throughput = max(self._measurements.values())
        candidates = [
            lv
            for lv, t in self._measurements.items()
            if not significantly_better(best_throughput, t, self.sens)
        ]
        best = min(candidates)
        self._phase = _Phase.SETTLED
        self._m_settles.inc()
        self.last_rule = f"settle:{best}"
        if best != self.level:
            self._prev_level = self.level
            self.level = best
            self._m_proposals.inc()
            return best
        return None

    def propose(self, observed: float) -> Optional[int]:
        """Record ``observed`` for the current level, return next level.

        Returns ``None`` when no change is proposed this period (settled
        or just settled onto the current level).
        """
        if observed < 0:
            raise ValueError(f"observed throughput must be >= 0: {observed}")
        self._measurements[self.level] = observed
        self.last_rule = "hold"

        if self._phase is _Phase.SETTLED:
            self.last_rule = f"settled:{self.level}"
            return None

        if self._phase is _Phase.EXPLORE:
            prev = self._prev_level
            if prev is None:
                # First measurement at the starting level: probe upward
                # if possible.  Already at the ceiling (e.g. a restart
                # triggered while holding max threads): probe downward
                # instead — settling at max unexamined would bake in
                # overshoot.
                if self.level >= self.max_threads:
                    if self.level <= self.min_threads:
                        self._phase = _Phase.SETTLED
                        return None
                    self._phase = _Phase.PROBE_DOWN
                    self._restart_anchor = self.level
                    self._prev_level = self.level
                    self.level = max(self.min_threads, self.level // 2)
                    self.last_rule = (
                        f"probe-down:{self._prev_level}->{self.level}"
                    )
                    self._m_proposals.inc()
                    return self.level
                self._prev_level = self.level
                self.level = self._next_up(self.level)
                self.last_rule = f"explore:{self._prev_level}->{self.level}"
                self._m_proposals.inc()
                return self.level
            prev_throughput = self._measurements[prev]
            degraded = significantly_better(
                prev_throughput, observed, self.sens
            )
            if not degraded:
                # Better OR flat: keep climbing.  Flat matters: extra
                # scheduler threads with no queues to serve are idle
                # and free (Fig. 5(a)), and a later threading-model
                # adjustment may need them — giving up on the first
                # flat step would trap the system at minimum
                # parallelism on multi-source graphs.  Overshoot is
                # reclaimed at settle time (lowest level within SENS
                # of the best).
                if self.level >= self.max_threads:
                    # Geometric steps may have jumped over the peak on
                    # a flat shoulder; refine between the knee and the
                    # ceiling before settling.
                    knee = self._knee_level()
                    if self.max_threads - knee > self._granularity(
                        self.max_threads
                    ):
                        self._refine_lo = knee
                        self._refine_hi = self.max_threads
                        return self._refine_step()
                    return self._settle_at_best()
                self._prev_level = self.level
                self.level = self._next_up(self.level)
                self.last_rule = f"explore:{self._prev_level}->{self.level}"
                self._m_proposals.inc()
                return self.level
            # The latest move significantly degraded throughput.
            if (
                self._restart_anchor is not None
                and self.level > self._restart_anchor
                and self._restart_anchor > self.min_threads
            ):
                # Restarted exploration went up and failed; the workload
                # may have shrunk -- probe below the anchor once.
                self._phase = _Phase.PROBE_DOWN
                self._prev_level = self.level
                self.level = max(
                    self.min_threads, self._restart_anchor // 2
                )
                self.last_rule = (
                    f"probe-down:{self._prev_level}->{self.level}"
                )
                self._m_proposals.inc()
                return self.level
            # Refine between the knee (the lowest level already within
            # SENS of the best measurement -- flat climbing may have
            # sailed past the peak on a flat shoulder) and the level
            # that degraded.
            self._refine_lo = min(self._knee_level(), self.level)
            self._refine_hi = max(self._knee_level(), self.level)
            return self._refine_step()

        if self._phase is _Phase.PROBE_DOWN:
            anchor = self._restart_anchor
            assert anchor is not None
            anchor_throughput = self._measurements.get(anchor, 0.0)
            if significantly_better(observed, anchor_throughput, self.sens):
                # Shrinking helped: refine between min and the anchor.
                self._refine_lo = self.min_threads
                self._refine_hi = anchor
                self._phase = _Phase.REFINE
                return self._refine_step()
            return self._settle_at_best()

        # REFINE
        return self._refine_step()

    def _refine_step(self) -> Optional[int]:
        """One binary-search move between _refine_lo and _refine_hi."""
        self._phase = _Phase.REFINE
        lo, hi = self._refine_lo, self._refine_hi
        gran = self._granularity(hi)
        # Narrow using the freshest data for the midpoint we last tried.
        if self.level != lo and self.level != hi and lo < self.level < hi:
            t_mid = self._measurements.get(self.level)
            t_lo = self._measurements.get(lo)
            if t_mid is not None and t_lo is not None:
                if significantly_better(t_mid, t_lo, self.sens):
                    self._refine_lo = lo = self.level
                else:
                    self._refine_hi = hi = self.level
        if hi - lo <= gran:
            return self._settle_at_best()
        mid = (lo + hi) // 2
        if mid == self.level or mid in self._measurements:
            return self._settle_at_best()
        self._prev_level = self.level
        self.level = mid
        self.last_rule = f"refine:{self._prev_level}->{mid}"
        self._m_proposals.inc()
        return mid
