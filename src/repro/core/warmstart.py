"""Warm-start layer: perfmodel prior + persistent phase memory.

Stock adaptation always starts cold — no queues, minimum threads —
and climbs the Fig. 7 loop from scratch, so the first dozens of
periods rediscover an operating point that was predictable (the
calibrated perfmodel) or already known (the same workload phase
converged an hour ago).  This module seeds the coordinator instead:

- **prior** (``mode="model"``) — query
  :func:`repro.perfmodel.predict.predict_operating_point` for the
  predicted near-optimal (thread count, queue placement) and start
  there, keeping the R1–R5 exploration to correct model error in
  either direction (the warm entry anchors the thread-count search so
  the guarded *downward* probe is armed, not just the upward climb);
- **posterior** (``mode="history"``) — a :class:`PhaseStore` keyed by
  blake2b fingerprints of (graph, machine, config, workload phase)
  records each converged operating point; a phase seen before snaps
  back to its last-known-good configuration in one period, with the
  STABLE-mode deviation monitor as the safety net against staleness;
- ``mode="auto"`` — posterior when the phase is known, prior
  otherwise; ``mode="off"`` — byte-identical stock behaviour (no
  session is even constructed).

The store persists through :mod:`repro.bench.cache`'s on-disk tier
(``REPRO_MEMO_DIR`` or an explicit directory), so phase memory
survives across processes and sessions; without a directory it is
process-local, which still covers mid-run phase recurrence under
time-varying open-loop load (diurnal, ON/OFF, flash crowds).

Everything here is substrate-agnostic: the same
:class:`WarmStartSpec` travels through the ``AdaptationBackend``
protocol to the DES, perfmodel and multi-PE job runners (it is a
plain picklable dataclass, so the job layer can ship it to pool
workers), and each runner builds its own :class:`WarmStartSession`
bound to its graph, machine and phase clock.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..bench import cache
from ..obs.hub import Obs, ensure_hub

__all__ = [
    "VALID_MODES",
    "PhaseRecord",
    "PhaseStore",
    "WarmStartHint",
    "WarmStartSession",
    "WarmStartSpec",
    "make_runner_session",
    "model_hint",
    "quantize_rate",
    "resolve_warm_start",
]

# CLI / scenario / env vocabulary for run.warm_start and --warm-start.
VALID_MODES = ("off", "model", "history", "auto")


def resolve_warm_start(
    explicit: Optional[str], scenario_value: Optional[str] = None
) -> str:
    """Warm-start mode with the ``--jobs``-style precedence chain:
    explicit argument > scenario ``run.warm_start`` > the
    ``REPRO_WARM_START`` environment variable > ``"off"``."""
    if explicit is not None:
        value = explicit
    elif scenario_value is not None:
        value = scenario_value
    else:
        value = os.environ.get("REPRO_WARM_START", "").strip().lower()
        value = value or "off"
    if value not in VALID_MODES:
        raise ValueError(
            f"invalid warm-start mode {value!r}; "
            f"expected one of {', '.join(VALID_MODES)}"
        )
    return value


@dataclass(frozen=True)
class WarmStartSpec:
    """Picklable warm-start request, threaded through the backends.

    ``store_dir`` overrides the phase store's directory (None defers
    to ``REPRO_MEMO_DIR``; no directory at all keeps the store
    process-local).  ``phase_rate`` maps a period's simulated start
    time to the offered arrival rate (e.g.
    ``ArrivalProcess.rate_at``) so time-varying open-loop phases get
    distinct store keys; it must be picklable for the job layer's
    pool workers (a bound method of a frozen dataclass is).
    """

    mode: str = "off"
    store_dir: Optional[str] = None
    phase_rate: Optional[Callable[[float], float]] = None

    def __post_init__(self) -> None:
        if self.mode not in VALID_MODES:
            raise ValueError(
                f"invalid warm-start mode {self.mode!r}; "
                f"expected one of {', '.join(VALID_MODES)}"
            )

    @property
    def enabled(self) -> bool:
        return self.mode != "off"


@dataclass(frozen=True)
class WarmStartHint:
    """One seeding suggestion handed to a coordinator at (re)start.

    ``snap=True`` means the hint is trusted enough to enter STABLE
    directly (posterior hits: the configuration already converged for
    this exact phase); otherwise the coordinator starts its search at
    the hinted point (prior hits: model error must stay correctable).
    """

    threads: int
    queued: Tuple[int, ...]
    source: str  # "model" | "history"
    expected_throughput: Optional[float] = None
    thread_range: Optional[Tuple[int, int]] = None
    snap: bool = False


@dataclass(frozen=True)
class PhaseRecord:
    """A converged operating point remembered for one phase key."""

    threads: int
    queued: Tuple[int, ...]
    throughput: float
    thread_range: Tuple[int, int]
    # Multi-PE jobs: converged replica count per PE name.
    replicas: Tuple[Tuple[str, int], ...] = ()


class PhaseStore:
    """Phase-keyed memory of converged operating points.

    A thin dict with a write-through disk tier: keys are blake2b
    fingerprints (strings), values :class:`PhaseRecord`.  Disk
    entries ride :func:`repro.bench.cache.disk_lookup` /
    :func:`~repro.bench.cache.disk_store`, so corruption and format
    drift degrade to misses and concurrent writers are safe.
    """

    KIND = "warm-phase"

    def __init__(self, directory: Optional[str] = None) -> None:
        self._directory = directory
        self._mem: Dict[str, PhaseRecord] = {}

    def _dir(self) -> Optional[str]:
        return cache.disk_dir(self._directory)

    def lookup(self, key: str) -> Optional[PhaseRecord]:
        record = self._mem.get(key)
        if record is not None:
            return record
        hit, value = cache.disk_lookup(
            self.KIND, key, directory=self._dir()
        )
        if hit and isinstance(value, PhaseRecord):
            self._mem[key] = value
            return value
        return None

    def record(self, key: str, record: PhaseRecord) -> None:
        self._mem[key] = record
        cache.disk_store(self.KIND, key, record, directory=self._dir())

    def __len__(self) -> int:
        return len(self._mem)


def model_hint(graph, machine, config) -> Optional[WarmStartHint]:
    """The prior: predict a near-optimal point from the perfmodel."""
    from ..perfmodel.predict import predict_operating_point

    elasticity = config.elasticity
    point = predict_operating_point(
        graph,
        machine,
        min_threads=elasticity.min_threads,
        max_threads=config.effective_max_threads,
        sens=elasticity.sens,
    )
    return WarmStartHint(
        threads=point.threads,
        queued=point.queued,
        source="model",
        expected_throughput=point.throughput,
    )


@dataclass
class WarmStartSession:
    """One runner's live warm-start policy.

    ``hint()`` is consulted by the coordinator at INIT and at every
    workload-change restart; ``record()`` is called when a search
    settles.  The phase key and the prior are callables because both
    depend on runner state that moves during a run (the current graph
    under workload events, the period clock under open-loop load).
    """

    mode: str
    phase_key: Callable[[], str]
    store: Optional[PhaseStore] = None
    prior: Optional[Callable[[], Optional[WarmStartHint]]] = None
    obs: Optional[Obs] = None
    _prior_cache: Dict[Any, Optional[WarmStartHint]] = field(
        default_factory=dict
    )

    def hint(self) -> Optional[WarmStartHint]:
        if self.mode == "off":
            return None
        hub = ensure_hub(self.obs)
        if self.mode in ("history", "auto") and self.store is not None:
            record = self.store.lookup(self.phase_key())
            if record is not None:
                hub.registry.counter(
                    "warmstart.phase_hits",
                    "coordinator (re)starts seeded from the phase store",
                ).inc()
                return WarmStartHint(
                    threads=record.threads,
                    queued=record.queued,
                    source="history",
                    expected_throughput=record.throughput,
                    thread_range=record.thread_range,
                    snap=True,
                )
        if self.mode in ("model", "auto") and self.prior is not None:
            hint = self._model_hint()
            if hint is not None:
                hub.registry.counter(
                    "warmstart.model_hints",
                    "coordinator (re)starts seeded from the perfmodel "
                    "prior",
                ).inc()
            return hint
        return None

    def _model_hint(self) -> Optional[WarmStartHint]:
        # Keyed by the phase key so a workload change (new graph, new
        # envelope phase) re-queries the model instead of replaying a
        # stale prediction.
        key = self.phase_key()
        if key not in self._prior_cache:
            self._prior_cache[key] = self.prior()
        return self._prior_cache[key]

    def record(
        self,
        threads: int,
        queued: Tuple[int, ...],
        throughput: float,
        thread_range: Optional[Tuple[int, int]] = None,
        replicas: Tuple[Tuple[str, int], ...] = (),
    ) -> None:
        """Remember a converged operating point for the current phase."""
        if self.mode == "off" or self.store is None:
            return
        ensure_hub(self.obs).registry.counter(
            "warmstart.records",
            "converged operating points written to the phase store",
        ).inc()
        self.store.record(
            self.phase_key(),
            PhaseRecord(
                threads=threads,
                queued=tuple(queued),
                throughput=throughput,
                thread_range=(
                    thread_range
                    if thread_range is not None
                    else (threads, threads)
                ),
                replicas=replicas,
            ),
        )


def quantize_rate(rate: float) -> float:
    """2 significant digits: one bucket per envelope step, so a phase
    revisited at a near-identical offered rate shares its key."""
    return float(f"{rate:.2g}")


def make_runner_session(
    spec: Optional[WarmStartSpec],
    graph_fn: Callable[[], Any],
    machine: Any,
    config: Any,
    phase_token: Callable[[], Any],
    obs: Optional[Obs] = None,
    store: Optional[PhaseStore] = None,
) -> Optional[WarmStartSession]:
    """Build the session a runner installs on its coordinator.

    ``graph_fn`` is consulted lazily (workload events swap graphs
    mid-run); ``phase_token`` supplies the workload-phase component of
    the store key (e.g. the quantized envelope rate at the current
    period).  Returns None for a disabled spec, which keeps every
    stock code path untouched.
    """
    if spec is None or not spec.enabled:
        return None

    def phase_key() -> str:
        return cache.fingerprint(
            "warm-phase",
            cache.graph_fingerprint(graph_fn()),
            cache.machine_fingerprint(machine),
            cache.config_fingerprint(config),
            phase_token(),
        )

    session_store = store
    if session_store is None and spec.mode in ("history", "auto"):
        session_store = PhaseStore(spec.store_dir)
    prior = None
    if spec.mode in ("model", "auto"):
        prior = lambda: model_hint(graph_fn(), machine, config)  # noqa: E731
    return WarmStartSession(
        mode=spec.mode,
        phase_key=phase_key,
        store=session_store,
        prior=prior,
        obs=obs,
    )
