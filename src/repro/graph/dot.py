"""Graph visualization: Graphviz DOT export and compact ASCII summary.

``to_dot`` renders a stream graph (optionally annotated with a queue
placement: dynamic operators are drawn with a doubled border and the
queue edges in bold) for inspection with any Graphviz viewer.
``ascii_summary`` prints the level structure for quick terminal
debugging of generated topologies.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Union

from .analysis import levelize
from .model import OperatorKind, StreamGraph

# Anything naming a set of queued operators: a QueuePlacement (duck-typed
# via its `.queued` attribute -- graph/ must not import runtime/) or a
# plain iterable of operator indices.
PlacementLike = Union[Iterable[int], object]


def _queued_set(placement: Optional[PlacementLike]) -> Set[int]:
    if placement is None:
        return set()
    queued = getattr(placement, "queued", placement)
    return set(queued)

_KIND_SHAPE = {
    OperatorKind.SOURCE: "invhouse",
    OperatorKind.FUNCTIONAL: "box",
    OperatorKind.SINK: "house",
}


def _escape(label: str) -> str:
    return label.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(
    graph: StreamGraph,
    placement: Optional[PlacementLike] = None,
    include_costs: bool = True,
) -> str:
    """Render the graph as Graphviz DOT source."""
    queued = _queued_set(placement)
    lines = [
        f'digraph "{_escape(graph.name)}" {{',
        "  rankdir=LR;",
        '  node [fontname="Helvetica", fontsize=10];',
    ]
    for op in graph:
        label = op.name
        if include_costs:
            label += f"\\n{op.cost_flops:g}F"
            if op.selectivity != 1.0 and not op.is_sink:
                label += f" x{op.selectivity:g}"
        attrs = [f'label="{_escape(label)}"']
        attrs.append(f"shape={_KIND_SHAPE[op.kind]}")
        if op.index in queued:
            attrs.append("peripheries=2")
            attrs.append('color="blue"')
        if op.uses_lock:
            attrs.append('style="filled"')
            attrs.append('fillcolor="lightyellow"')
        lines.append(f"  n{op.index} [{', '.join(attrs)}];")
    for edge in graph.edges:
        attrs = ""
        if edge.dst in queued:
            attrs = ' [style=bold, color="blue"]'
        lines.append(f"  n{edge.src} -> n{edge.dst}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def ascii_summary(
    graph: StreamGraph,
    placement: Optional[PlacementLike] = None,
    max_names_per_level: int = 4,
) -> str:
    """Compact per-level text rendering of the graph."""
    queued = _queued_set(placement)
    levels = levelize(graph)
    by_level: dict = {}
    for idx, level in levels.items():
        by_level.setdefault(level, []).append(idx)
    lines = [
        f"{graph.name}: {len(graph)} operators, "
        f"{len(graph.edges)} streams, "
        f"payload {graph.tuple_spec.payload_bytes}B"
    ]
    for level in sorted(by_level):
        members = sorted(by_level[level])
        names = []
        for idx in members[:max_names_per_level]:
            op = graph.operator(idx)
            marker = "[Q]" if idx in queued else ""
            names.append(f"{op.name}{marker}")
        suffix = (
            f" (+{len(members) - max_names_per_level} more)"
            if len(members) > max_names_per_level
            else ""
        )
        lines.append(
            f"  L{level:<3d} ({len(members):>4d} ops): "
            + ", ".join(names)
            + suffix
        )
    return "\n".join(lines)
