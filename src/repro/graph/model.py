"""Core dataflow-graph model for the simulated SPL runtime.

The paper's unit of scheduling is the *operator*: an event-driven actor
that consumes tuples on input ports and submits tuples on output ports.
Operators are connected by *streams*.  This module defines the static
graph model used by every other subsystem:

- :class:`Operator` — a node with a per-tuple computational cost
  (expressed in FLOPs, as in the paper's benchmarks), a selectivity
  (output tuples produced per input tuple) and a kind (source, sink or
  plain functional operator).
- :class:`StreamEdge` — a directed connection between two operators.
- :class:`StreamGraph` — the immutable-ish container with adjacency
  lookup, topological utilities and validation.

The graph is static for the lifetime of a processing element, exactly as
in IBM Streams: elasticity changes *how* operators are executed (which
threading model, how many threads), never the graph itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class FanoutPolicy(enum.Enum):
    """How an operator's output tuples distribute over its successors.

    ``BROADCAST`` is plain SPL stream semantics: connecting one output
    port to several input ports delivers every tuple to every consumer
    (e.g. PacketAnalysis' ingest stream feeding all three analysis
    branches).  ``SPLIT`` models a data-parallel distribution point
    (the splitter the ``@parallel`` annotation generates): each tuple
    goes to exactly one of the successors, round-robin.
    """

    BROADCAST = "broadcast"
    SPLIT = "split"


class OperatorKind(enum.Enum):
    """Role of an operator inside a processing element.

    ``SOURCE`` operators are driven by a dedicated operator thread (they
    pull data from the outside world).  ``SINK`` operators terminate the
    graph; throughput is measured at sinks, mirroring the paper's
    "we measure application throughput at the sink operator".
    ``FUNCTIONAL`` operators are ordinary tuple-in/tuple-out actors.
    """

    SOURCE = "source"
    FUNCTIONAL = "functional"
    SINK = "sink"


@dataclass(frozen=True)
class TupleSpec:
    """Static description of the tuples flowing on a stream.

    SPL tuples are statically allocated, strongly typed structures; the
    runtime cost of pushing one through a scheduler queue is dominated by
    the payload copy.  ``payload_bytes`` is therefore the knob the paper
    sweeps from 1 B to 16384 B in its benchmarks.
    """

    payload_bytes: int = 128

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError(
                f"payload_bytes must be non-negative, got {self.payload_bytes}"
            )


@dataclass(frozen=True)
class Operator:
    """A single SPL operator.

    Parameters
    ----------
    index:
        Dense, zero-based identifier.  The profiler and the elasticity
        algorithms address operators by index, just as the runtime-level
        per-thread state variable in the paper stores "the corresponding
        operator index".
    name:
        Human-readable name (unique within a graph).
    cost_flops:
        Per-tuple computational cost in floating point operations.  The
        paper's benchmarks use 1 / 100 / 10000 FLOPs for light / medium /
        heavy operators.
    kind:
        Source, functional or sink.
    selectivity:
        Average number of output tuples submitted per input tuple
        consumed.  1.0 for simple transforms; a tokenizer like the one in
        the paper's WikiWordCount example has selectivity > 1.
    uses_lock:
        Whether the operator serializes access to internal state with a
        lock.  The paper's Snk operator "maintains a local variable
        protected by a lock", which is what makes pure dynamic threading
        lose to manual threading on data-parallel graphs (Fig. 10).
    fanout:
        Output distribution policy over multiple successors (broadcast
        = every successor sees every tuple; split = data-parallel
        round-robin).
    max_rate:
        For sources: the maximum emission rate in tuples/s imposed by
        the outside world (e.g. a NIC's line rate for the paper's DPDK
        ingest).  ``None`` means unbounded.  Ignored for non-sources.
    """

    index: int
    name: str
    cost_flops: float = 100.0
    kind: OperatorKind = OperatorKind.FUNCTIONAL
    selectivity: float = 1.0
    uses_lock: bool = False
    fanout: FanoutPolicy = FanoutPolicy.BROADCAST
    max_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"operator index must be >= 0, got {self.index}")
        if self.cost_flops < 0:
            raise ValueError(
                f"cost_flops must be non-negative, got {self.cost_flops}"
            )
        if self.selectivity < 0:
            raise ValueError(
                f"selectivity must be non-negative, got {self.selectivity}"
            )
        if self.max_rate is not None and self.max_rate <= 0:
            raise ValueError(
                f"max_rate must be positive or None, got {self.max_rate}"
            )

    @property
    def is_source(self) -> bool:
        return self.kind is OperatorKind.SOURCE

    @property
    def is_sink(self) -> bool:
        return self.kind is OperatorKind.SINK

    def with_cost(self, cost_flops: float) -> "Operator":
        """Return a copy of this operator with a different cost.

        Used by workload generators that re-assign cost distributions
        (e.g. the phase change in Fig. 13) without rebuilding the graph.
        """
        return Operator(
            index=self.index,
            name=self.name,
            cost_flops=cost_flops,
            kind=self.kind,
            selectivity=self.selectivity,
            uses_lock=self.uses_lock,
            fanout=self.fanout,
            max_rate=self.max_rate,
        )


@dataclass(frozen=True)
class StreamEdge:
    """A directed stream connecting ``src`` -> ``dst`` operator indices."""

    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"edge endpoints must be >= 0, got {self}")
        if self.src == self.dst:
            raise ValueError(f"self loops are not allowed: {self}")


class GraphValidationError(ValueError):
    """Raised when a stream graph violates a structural invariant."""


class StreamGraph:
    """A directed acyclic dataflow graph of operators.

    The graph is the static substrate every other module consumes.  It
    owns:

    - the operator table (dense indices 0..n-1),
    - forward and reverse adjacency,
    - a cached topological order,
    - the tuple spec describing payloads on its streams.

    Instances are conceptually immutable; the only sanctioned mutation is
    :meth:`replace_costs`, which returns a **new** graph (used for
    workload phase changes).
    """

    def __init__(
        self,
        operators: Sequence[Operator],
        edges: Iterable[StreamEdge],
        tuple_spec: Optional[TupleSpec] = None,
        name: str = "graph",
    ) -> None:
        self.name = name
        self.tuple_spec = tuple_spec if tuple_spec is not None else TupleSpec()
        self._operators: List[Operator] = list(operators)
        self._edges: List[StreamEdge] = list(edges)
        self._successors: Dict[int, List[int]] = {
            op.index: [] for op in self._operators
        }
        self._predecessors: Dict[int, List[int]] = {
            op.index: [] for op in self._operators
        }
        self._validate_indices()
        for edge in self._edges:
            self._successors[edge.src].append(edge.dst)
            self._predecessors[edge.dst].append(edge.src)
        self._topo_order: List[int] = self._compute_topo_order()
        self._validate_structure()

    # ------------------------------------------------------------------
    # construction-time validation
    # ------------------------------------------------------------------
    def _validate_indices(self) -> None:
        indices = [op.index for op in self._operators]
        if indices != list(range(len(indices))):
            raise GraphValidationError(
                "operator indices must be dense and ordered 0..n-1; "
                f"got {indices[:10]}{'...' if len(indices) > 10 else ''}"
            )
        names = [op.name for op in self._operators]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise GraphValidationError(f"duplicate operator names: {dupes[:5]}")
        for edge in self._edges:
            if edge.src >= len(indices) or edge.dst >= len(indices):
                raise GraphValidationError(
                    f"edge {edge} references unknown operator"
                )

    def _compute_topo_order(self) -> List[int]:
        """Kahn's algorithm; raises on cycles."""
        in_degree = {op.index: 0 for op in self._operators}
        for edge in self._edges:
            in_degree[edge.dst] += 1
        ready = sorted(idx for idx, deg in in_degree.items() if deg == 0)
        order: List[int] = []
        # Use a simple list as a FIFO; graphs here are at most a few
        # thousand operators so O(n) pops are acceptable and keep the
        # implementation dependency-free.
        queue = list(ready)
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            order.append(node)
            for succ in self._successors[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self._operators):
            raise GraphValidationError("stream graph contains a cycle")
        return order

    def _validate_structure(self) -> None:
        for op in self._operators:
            preds = self._predecessors[op.index]
            succs = self._successors[op.index]
            if op.is_source and preds:
                raise GraphValidationError(
                    f"source operator {op.name} has incoming streams"
                )
            if op.is_sink and succs:
                raise GraphValidationError(
                    f"sink operator {op.name} has outgoing streams"
                )
            if not op.is_source and not preds:
                raise GraphValidationError(
                    f"non-source operator {op.name} has no incoming streams"
                )
        if not any(op.is_source for op in self._operators):
            raise GraphValidationError("graph has no source operator")
        if not any(op.is_sink for op in self._operators):
            raise GraphValidationError("graph has no sink operator")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._operators)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._operators)

    @property
    def operators(self) -> Tuple[Operator, ...]:
        return tuple(self._operators)

    @property
    def edges(self) -> Tuple[StreamEdge, ...]:
        return tuple(self._edges)

    def operator(self, index: int) -> Operator:
        return self._operators[index]

    def by_name(self, name: str) -> Operator:
        for op in self._operators:
            if op.name == name:
                return op
        raise KeyError(f"no operator named {name!r} in graph {self.name!r}")

    def successors(self, index: int) -> Tuple[int, ...]:
        return tuple(self._successors[index])

    def predecessors(self, index: int) -> Tuple[int, ...]:
        return tuple(self._predecessors[index])

    def topological_order(self) -> Tuple[int, ...]:
        return tuple(self._topo_order)

    @property
    def sources(self) -> Tuple[Operator, ...]:
        return tuple(op for op in self._operators if op.is_source)

    @property
    def sinks(self) -> Tuple[Operator, ...]:
        return tuple(op for op in self._operators if op.is_sink)

    def fan_out(self, index: int) -> int:
        return len(self._successors[index])

    def fan_in(self, index: int) -> int:
        return len(self._predecessors[index])

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def total_cost_flops(self) -> float:
        """Sum of per-tuple costs over all operators (balanced view)."""
        return sum(op.cost_flops for op in self._operators)

    def edge_rate_multiplier(self, src: int) -> float:
        """Per-successor rate multiplier for operator ``src``'s outputs.

        ``selectivity`` for broadcast fan-out (every consumer gets every
        output tuple), ``selectivity / fan_out`` for split fan-out
        (data-parallel round-robin distribution).
        """
        op = self._operators[src]
        n_succ = len(self._successors[src])
        if n_succ == 0:
            return 0.0
        if op.fanout is FanoutPolicy.SPLIT:
            return op.selectivity / n_succ
        return op.selectivity

    def arrival_rates(self) -> Dict[int, float]:
        """Relative per-operator tuple arrival rates.

        Sources are normalized to rate 1.0 each; downstream rates follow
        selectivity along edges.  Broadcast fan-out *replicates* tuples
        (every successor sees each output tuple, SPL stream semantics),
        split fan-out divides them (data parallelism); fan-in *sums*
        rates.
        """
        rates: Dict[int, float] = {op.index: 0.0 for op in self._operators}
        for op in self.sources:
            rates[op.index] = 1.0
        for idx in self._topo_order:
            per_succ = rates[idx] * self.edge_rate_multiplier(idx)
            for succ in self._successors[idx]:
                rates[succ] += per_succ
        return rates

    def weighted_cost_flops(self) -> Dict[int, float]:
        """Per-operator cost weighted by relative arrival rate.

        This is what the sampling profiler's counter converges to: the
        probability of catching a thread inside operator *i* is
        proportional to ``rate_i * cost_i``.
        """
        rates = self.arrival_rates()
        return {
            op.index: rates[op.index] * op.cost_flops
            for op in self._operators
        }

    def replace_costs(self, costs: Dict[int, float]) -> "StreamGraph":
        """Return a new graph with updated per-operator costs.

        ``costs`` maps operator index -> new cost; unmentioned operators
        keep their cost.  Used by workload phase-change experiments.
        """
        new_ops = [
            op.with_cost(costs.get(op.index, op.cost_flops))
            for op in self._operators
        ]
        return StreamGraph(
            new_ops, self._edges, tuple_spec=self.tuple_spec, name=self.name
        )

    def with_tuple_spec(self, tuple_spec: TupleSpec) -> "StreamGraph":
        """Return a new graph with a different tuple payload spec."""
        return StreamGraph(
            self._operators, self._edges, tuple_spec=tuple_spec, name=self.name
        )

    def __repr__(self) -> str:
        return (
            f"StreamGraph(name={self.name!r}, operators={len(self)}, "
            f"edges={len(self._edges)}, "
            f"payload={self.tuple_spec.payload_bytes}B)"
        )
