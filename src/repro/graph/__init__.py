"""Dataflow graph substrate: operators, streams, topologies, costs."""

from .builder import GraphBuilder
from .dot import ascii_summary, to_dot
from .cost import (
    CostDistribution,
    assign_costs,
    balanced,
    cost_classes,
    skewed,
)
from .model import (
    FanoutPolicy,
    GraphValidationError,
    Operator,
    OperatorKind,
    StreamEdge,
    StreamGraph,
    TupleSpec,
)
from .topologies import bushy, bushy_82, data_parallel, mixed, pipeline

__all__ = [
    "ascii_summary",
    "to_dot",
    "GraphBuilder",
    "CostDistribution",
    "assign_costs",
    "balanced",
    "cost_classes",
    "skewed",
    "FanoutPolicy",
    "GraphValidationError",
    "Operator",
    "OperatorKind",
    "StreamEdge",
    "StreamGraph",
    "TupleSpec",
    "bushy",
    "bushy_82",
    "data_parallel",
    "mixed",
    "pipeline",
]
