"""Generators for the benchmark graph architectures of the paper (Fig. 8).

Four architectures "form the basic building blocks for many Streams
applications":

- :func:`pipeline` — Src -> Op_1 -> ... -> Op_n -> Snk (Fig. 8(a)); also
  the 100-operator chain used for the motivating experiment (Fig. 1) and
  the 500-operator chain of the adaptation study (Fig. 6).
- :func:`data_parallel` — Src fans out to *width* parallel workers which
  all feed a single Snk (Fig. 8(b)).  The sink's throughput counter lock
  is the contention point discussed in §4.1.
- :func:`mixed` — Src fans out to *width* parallel pipelines of *depth*
  operators each, merging at Snk (Fig. 8(c)); "a close representation of
  many realistic production scenarios".
- :func:`bushy` — a balanced binary-tree split followed by a mirrored
  merge (Fig. 8(d)); the paper fixes the total at 82 operators.

All generators take a payload size (the paper sweeps 1 B .. 16384 B) and
an optional per-operator cost; cost distributions can be re-assigned
afterwards with :func:`repro.graph.cost.assign_costs`.
"""

from __future__ import annotations

from typing import List, Optional

from .builder import GraphBuilder
from .model import FanoutPolicy, Operator, StreamGraph

DEFAULT_SOURCE_FLOPS = 10.0
DEFAULT_SINK_FLOPS = 10.0


def pipeline(
    n_operators: int,
    cost_flops: float = 100.0,
    payload_bytes: int = 128,
    name: Optional[str] = None,
) -> StreamGraph:
    """A linear chain with ``n_operators`` functional operators.

    The graph has ``n_operators + 2`` nodes in total (plus source and
    sink); the paper counts only the functional stages when it says
    "a chain of 100 operators".
    """
    if n_operators < 1:
        raise ValueError(f"pipeline needs >= 1 operator, got {n_operators}")
    b = GraphBuilder(
        name or f"pipeline-{n_operators}", payload_bytes=payload_bytes
    )
    src = b.add_source("src", cost_flops=DEFAULT_SOURCE_FLOPS)
    prev: Operator = src
    for i in range(n_operators):
        op = b.add_operator(f"op{i}", cost_flops=cost_flops)
        b.connect(prev, op)
        prev = op
    snk = b.add_sink("snk", cost_flops=DEFAULT_SINK_FLOPS)
    b.connect(prev, snk)
    return b.build()


def data_parallel(
    width: int,
    cost_flops: float = 100.0,
    payload_bytes: int = 128,
    name: Optional[str] = None,
) -> StreamGraph:
    """``width`` parallel workers between one source and one sink.

    The sink "communicates directly with all the parallel worker
    operators" and guards its tuple counter with a lock, so thread-count
    elasticity alone can perform *worse* than manual threading here
    (Fig. 10).
    """
    if width < 1:
        raise ValueError(f"data_parallel needs width >= 1, got {width}")
    b = GraphBuilder(
        name or f"data-parallel-{width}", payload_bytes=payload_bytes
    )
    src = b.add_source(
        "src", cost_flops=DEFAULT_SOURCE_FLOPS, fanout=FanoutPolicy.SPLIT
    )
    snk = b.add_sink("snk", cost_flops=DEFAULT_SINK_FLOPS, uses_lock=True)
    for i in range(width):
        w = b.add_operator(f"worker{i}", cost_flops=cost_flops)
        b.connect(src, w)
        b.connect(w, snk)
    return b.build()


def mixed(
    width: int,
    depth: int,
    cost_flops: float = 100.0,
    payload_bytes: int = 128,
    name: Optional[str] = None,
) -> StreamGraph:
    """``width`` parallel pipelines of ``depth`` operators each.

    The paper's mixed benchmark uses width 10 with per-path depth 50 or
    100 (Fig. 11).
    """
    if width < 1 or depth < 1:
        raise ValueError(
            f"mixed needs width >= 1 and depth >= 1, got {width}x{depth}"
        )
    b = GraphBuilder(
        name or f"mixed-{width}x{depth}", payload_bytes=payload_bytes
    )
    src = b.add_source(
        "src", cost_flops=DEFAULT_SOURCE_FLOPS, fanout=FanoutPolicy.SPLIT
    )
    snk = b.add_sink("snk", cost_flops=DEFAULT_SINK_FLOPS, uses_lock=True)
    for p in range(width):
        prev: Operator = src
        for d in range(depth):
            op = b.add_operator(f"p{p}_op{d}", cost_flops=cost_flops)
            b.connect(prev, op)
            prev = op
        b.connect(prev, snk)
    return b.build()


def bushy(
    levels: int = 5,
    cost_flops: float = 100.0,
    payload_bytes: int = 128,
    name: Optional[str] = None,
) -> StreamGraph:
    """A binary split tree mirrored into a merge tree (Fig. 8(d)).

    With ``levels`` split levels the functional-operator count is
    ``2 * (2**levels - 1)`` plus the width at the widest point; the
    default ``levels=5`` gives 82 functional operators, matching "the
    total number of operators is fixed at 82".

    Structure: a root operator splits into two, each splits into two,
    ... down ``levels`` levels; then the leaves pairwise merge back up a
    mirrored tree into the sink.
    """
    if levels < 1:
        raise ValueError(f"bushy needs levels >= 1, got {levels}")
    b = GraphBuilder(name or f"bushy-{levels}", payload_bytes=payload_bytes)
    src = b.add_source("src", cost_flops=DEFAULT_SOURCE_FLOPS)

    # Split phase: level l has 2**l operators.
    split_levels: List[List[Operator]] = []
    for level in range(levels):
        row: List[Operator] = []
        for j in range(2**level):
            op = b.add_operator(
                f"split_l{level}_{j}",
                cost_flops=cost_flops,
                fanout=FanoutPolicy.SPLIT,
            )
            row.append(op)
        split_levels.append(row)
    b.connect(src, split_levels[0][0])
    for level in range(levels - 1):
        for j, parent in enumerate(split_levels[level]):
            b.connect(parent, split_levels[level + 1][2 * j])
            b.connect(parent, split_levels[level + 1][2 * j + 1])

    # Merge phase: mirror of the split (levels-1 rows, halving widths).
    prev_row = split_levels[-1]
    for level in range(levels - 1):
        width = len(prev_row) // 2
        row = []
        for j in range(width):
            op = b.add_operator(f"merge_l{level}_{j}", cost_flops=cost_flops)
            b.connect(prev_row[2 * j], op)
            b.connect(prev_row[2 * j + 1], op)
            row.append(op)
        prev_row = row

    snk = b.add_sink("snk", cost_flops=DEFAULT_SINK_FLOPS, uses_lock=True)
    b.connect(prev_row[0], snk)
    return b.build()


def bushy_82(
    cost_flops: float = 100.0, payload_bytes: int = 128
) -> StreamGraph:
    """The paper's 82-functional-operator bushy graph (Fig. 12).

    ``bushy(levels=5)`` yields 31 split + 31 merge = 62 interior
    operators plus the 2**4=16 pre-merge row... the exact decomposition:
    split rows 1+2+4+8+16 = 31, merge rows 16+8+4+2+1 → mirrored rows of
    8+4+2+1 = 15 below the widest row.  Total functional = 31 + 15 = 46
    for levels=5, so we instead tune levels/extra stages to land on 82:
    a levels=5 tree (46 ops) with a 36-operator pipeline tail keeps the
    bushy character while matching the operator count.
    """
    base = bushy(levels=5, cost_flops=cost_flops, payload_bytes=payload_bytes)
    n_functional = sum(
        1 for op in base if not op.is_source and not op.is_sink
    )
    tail = 82 - n_functional
    if tail <= 0:
        return base
    # Rebuild with a pipeline tail between the merge root and the sink.
    b = GraphBuilder("bushy-82", payload_bytes=payload_bytes)
    index_map = {}
    for op in base:
        if op.is_source:
            index_map[op.index] = b.add_source(op.name, op.cost_flops)
        elif op.is_sink:
            continue
        else:
            index_map[op.index] = b.add_operator(
                op.name,
                op.cost_flops,
                uses_lock=op.uses_lock,
                fanout=op.fanout,
            )
    sink_preds = []
    for edge in base.edges:
        if base.operator(edge.dst).is_sink:
            sink_preds.append(edge.src)
            continue
        b.connect(index_map[edge.src], index_map[edge.dst])
    prev = index_map[sink_preds[0]]
    for i in range(tail):
        op = b.add_operator(f"tail{i}", cost_flops=cost_flops)
        b.connect(prev, op)
        prev = op
    snk = b.add_sink("snk", cost_flops=DEFAULT_SINK_FLOPS, uses_lock=True)
    b.connect(prev, snk)
    return b.build()
