"""Fluent builder for :class:`~repro.graph.model.StreamGraph`.

Topology generators and applications construct graphs through this
builder rather than wiring :class:`Operator`/:class:`StreamEdge` lists by
hand.  The builder assigns dense indices in insertion order, checks name
uniqueness eagerly and defers full structural validation to
:meth:`GraphBuilder.build`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .model import (
    FanoutPolicy,
    GraphValidationError,
    Operator,
    OperatorKind,
    StreamEdge,
    StreamGraph,
    TupleSpec,
)

OperatorRef = Union[int, str, Operator]


class GraphBuilder:
    """Incrementally assemble a stream graph.

    Example
    -------
    >>> b = GraphBuilder("toy")
    >>> src = b.add_source("src")
    >>> mid = b.add_operator("work", cost_flops=100)
    >>> snk = b.add_sink("snk")
    >>> b.connect(src, mid).connect(mid, snk)  # doctest: +ELLIPSIS
    <repro.graph.builder.GraphBuilder object at ...>
    >>> graph = b.build()
    >>> len(graph)
    3
    """

    def __init__(self, name: str = "graph", payload_bytes: int = 128) -> None:
        self.name = name
        self._payload_bytes = payload_bytes
        self._operators: List[Operator] = []
        self._edges: List[StreamEdge] = []
        self._names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _add(
        self,
        name: str,
        cost_flops: float,
        kind: OperatorKind,
        selectivity: float,
        uses_lock: bool,
        fanout: FanoutPolicy = FanoutPolicy.BROADCAST,
        max_rate: "float | None" = None,
    ) -> Operator:
        if name in self._names:
            raise GraphValidationError(f"duplicate operator name {name!r}")
        op = Operator(
            index=len(self._operators),
            name=name,
            cost_flops=cost_flops,
            kind=kind,
            selectivity=selectivity,
            uses_lock=uses_lock,
            fanout=fanout,
            max_rate=max_rate,
        )
        self._operators.append(op)
        self._names[name] = op.index
        return op

    def add_source(
        self,
        name: str,
        cost_flops: float = 10.0,
        selectivity: float = 1.0,
        fanout: FanoutPolicy = FanoutPolicy.BROADCAST,
        max_rate: "float | None" = None,
    ) -> Operator:
        """Add a source operator (driven by a dedicated operator thread).

        ``max_rate`` caps the source's emission rate in tuples/s — the
        outside world's arrival rate (e.g. NIC line rate).
        """
        return self._add(
            name,
            cost_flops,
            OperatorKind.SOURCE,
            selectivity,
            uses_lock=False,
            fanout=fanout,
            max_rate=max_rate,
        )

    def add_operator(
        self,
        name: str,
        cost_flops: float = 100.0,
        selectivity: float = 1.0,
        uses_lock: bool = False,
        fanout: FanoutPolicy = FanoutPolicy.BROADCAST,
    ) -> Operator:
        """Add a plain functional operator."""
        return self._add(
            name,
            cost_flops,
            OperatorKind.FUNCTIONAL,
            selectivity,
            uses_lock,
            fanout=fanout,
        )

    def add_sink(
        self,
        name: str,
        cost_flops: float = 10.0,
        uses_lock: bool = True,
    ) -> Operator:
        """Add a sink operator.

        Sinks default to ``uses_lock=True``: the paper's sink tracks a
        throughput counter behind a lock, which is the contention source
        that makes dynamic threading lose on data-parallel graphs.
        """
        return self._add(
            name, cost_flops, OperatorKind.SINK, 0.0, uses_lock
        )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _resolve(self, ref: OperatorRef) -> int:
        if isinstance(ref, Operator):
            return ref.index
        if isinstance(ref, int):
            if not 0 <= ref < len(self._operators):
                raise GraphValidationError(f"unknown operator index {ref}")
            return ref
        if isinstance(ref, str):
            if ref not in self._names:
                raise GraphValidationError(f"unknown operator name {ref!r}")
            return self._names[ref]
        raise TypeError(f"cannot resolve operator reference {ref!r}")

    def connect(self, src: OperatorRef, dst: OperatorRef) -> "GraphBuilder":
        """Add a stream from ``src`` to ``dst``; returns self for chaining."""
        edge = StreamEdge(self._resolve(src), self._resolve(dst))
        self._edges.append(edge)
        return self

    def chain(self, *refs: OperatorRef) -> "GraphBuilder":
        """Connect the given operators into a linear pipeline."""
        if len(refs) < 2:
            raise GraphValidationError("chain() needs at least two operators")
        for a, b in zip(refs, refs[1:]):
            self.connect(a, b)
        return self

    def fan_out(
        self, src: OperatorRef, dsts: Sequence[OperatorRef]
    ) -> "GraphBuilder":
        """Connect ``src`` to every operator in ``dsts``."""
        for dst in dsts:
            self.connect(src, dst)
        return self

    def fan_in(
        self, srcs: Sequence[OperatorRef], dst: OperatorRef
    ) -> "GraphBuilder":
        """Connect every operator in ``srcs`` to ``dst``."""
        for src in srcs:
            self.connect(src, dst)
        return self

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    @property
    def operator_count(self) -> int:
        return len(self._operators)

    def build(self, tuple_spec: Optional[TupleSpec] = None) -> StreamGraph:
        """Validate and freeze the graph."""
        spec = tuple_spec or TupleSpec(payload_bytes=self._payload_bytes)
        return StreamGraph(
            self._operators, self._edges, tuple_spec=spec, name=self.name
        )
