"""Stream graph serialization: versioned JSON round-trip.

Topologies are worth sharing — a bug report is "this graph, this
placement, this machine" — so graphs serialize to plain JSON documents
(no pickling) that load back identically, including fan-out policies,
selectivities, locks and source rate caps.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from .model import (
    FanoutPolicy,
    Operator,
    OperatorKind,
    StreamEdge,
    StreamGraph,
    TupleSpec,
)

FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def graph_to_dict(graph: StreamGraph) -> dict:
    """Convert a graph to a JSON-serializable dictionary."""
    return {
        "version": FORMAT_VERSION,
        "name": graph.name,
        "payload_bytes": graph.tuple_spec.payload_bytes,
        "operators": [
            {
                "index": op.index,
                "name": op.name,
                "cost_flops": op.cost_flops,
                "kind": op.kind.value,
                "selectivity": op.selectivity,
                "uses_lock": op.uses_lock,
                "fanout": op.fanout.value,
                "max_rate": op.max_rate,
            }
            for op in graph
        ],
        "edges": [[e.src, e.dst] for e in graph.edges],
    }


def graph_from_dict(data: dict) -> StreamGraph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Structural validation runs as part of graph construction, so a
    tampered document fails loudly rather than producing a broken
    graph.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported graph format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    operators = [
        Operator(
            index=int(o["index"]),
            name=str(o["name"]),
            cost_flops=float(o["cost_flops"]),
            kind=OperatorKind(o["kind"]),
            selectivity=float(o["selectivity"]),
            uses_lock=bool(o["uses_lock"]),
            fanout=FanoutPolicy(o["fanout"]),
            max_rate=(
                float(o["max_rate"])
                if o.get("max_rate") is not None
                else None
            ),
        )
        for o in data["operators"]
    ]
    edges = [StreamEdge(int(s), int(d)) for s, d in data["edges"]]
    return StreamGraph(
        operators,
        edges,
        tuple_spec=TupleSpec(payload_bytes=int(data["payload_bytes"])),
        name=str(data["name"]),
    )


def save_graph(graph: StreamGraph, path: PathLike) -> None:
    """Write a graph to ``path`` as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(graph_to_dict(graph), indent=1)
    )


def load_graph(path: PathLike) -> StreamGraph:
    """Read a graph previously written by :func:`save_graph`."""
    return graph_from_dict(json.loads(pathlib.Path(path).read_text()))
