"""Structural analysis helpers over stream graphs.

These utilities answer the questions the runtime and the performance
model need: how much pipeline parallelism does the graph expose, where
are the critical paths, how do operators distribute over levels.  None
of them mutate the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .model import StreamGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a stream graph."""

    n_operators: int
    n_functional: int
    n_sources: int
    n_sinks: int
    n_edges: int
    max_fan_out: int
    max_fan_in: int
    depth: int
    max_width: int
    total_cost_flops: float


def levelize(graph: StreamGraph) -> Dict[int, int]:
    """Assign each operator its longest-path depth from any source."""
    level: Dict[int, int] = {}
    for idx in graph.topological_order():
        preds = graph.predecessors(idx)
        level[idx] = 0 if not preds else 1 + max(level[p] for p in preds)
    return level


def width_profile(graph: StreamGraph) -> List[int]:
    """Number of operators at each depth level (task-parallel width)."""
    levels = levelize(graph)
    depth = max(levels.values()) if levels else 0
    profile = [0] * (depth + 1)
    for lvl in levels.values():
        profile[lvl] += 1
    return profile


def critical_path_cost(graph: StreamGraph) -> float:
    """Maximum cumulative per-tuple FLOPs along any source->sink path.

    A lower bound on per-tuple latency; with full pipelining it does not
    bound throughput, but it bounds how much a single tuple costs.
    """
    best: Dict[int, float] = {}
    for idx in graph.topological_order():
        op = graph.operator(idx)
        preds = graph.predecessors(idx)
        incoming = max((best[p] for p in preds), default=0.0)
        best[idx] = incoming + op.cost_flops
    return max(best.values()) if best else 0.0


def stats(graph: StreamGraph) -> GraphStats:
    """Compute :class:`GraphStats` for a graph."""
    profile = width_profile(graph)
    return GraphStats(
        n_operators=len(graph),
        n_functional=sum(
            1 for op in graph if not op.is_source and not op.is_sink
        ),
        n_sources=len(graph.sources),
        n_sinks=len(graph.sinks),
        n_edges=len(graph.edges),
        max_fan_out=max(
            (graph.fan_out(op.index) for op in graph), default=0
        ),
        max_fan_in=max((graph.fan_in(op.index) for op in graph), default=0),
        depth=len(profile) - 1 if profile else 0,
        max_width=max(profile) if profile else 0,
        total_cost_flops=graph.total_cost_flops(),
    )


def functional_indices(graph: StreamGraph) -> Tuple[int, ...]:
    """Indices of non-source, non-sink operators.

    These are the operators eligible for a scheduler queue; the paper
    never queues a source (sources have their own operator threads).
    """
    return tuple(
        op.index for op in graph if not op.is_source
    )


def queueable_indices(graph: StreamGraph) -> Tuple[int, ...]:
    """Operators in front of which a scheduler queue may be placed.

    Everything except sources: the dynamic threading model "injects
    scheduler queues between each operator", and sinks receive queues
    too (they are downstream operators like any other).
    """
    return tuple(op.index for op in graph if not op.is_source)
