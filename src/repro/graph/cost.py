"""Operator cost distributions used by the paper's benchmarks (§4.1).

Two distributions:

- **balanced** — every operator performs the same number of FLOPs per
  tuple (the paper uses 100 FLOPs for pipeline benchmarks and sweeps
  1..10000 for bushy graphs).
- **skewed** — 10 % of operators are *heavy-weight* (10 000 FLOPs), 30 %
  are *medium-weight* (100 FLOPs) and the remaining 60 % are
  *light-weight* (1 FLOP), placed randomly in the graph "without any
  prior knowledge".

Sources and sinks keep their own (small) costs; the distributions apply
to functional operators only, matching the benchmark setup where the
workload lives in the pipeline stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .model import StreamGraph

HEAVY_FLOPS = 10_000.0
MEDIUM_FLOPS = 100.0
LIGHT_FLOPS = 1.0

HEAVY_FRACTION = 0.10
MEDIUM_FRACTION = 0.30


@dataclass(frozen=True)
class CostDistribution:
    """A named recipe for assigning per-tuple operator costs."""

    name: str
    heavy_fraction: float = 0.0
    medium_fraction: float = 0.0
    heavy_flops: float = HEAVY_FLOPS
    medium_flops: float = MEDIUM_FLOPS
    light_flops: float = LIGHT_FLOPS
    uniform_flops: Optional[float] = None

    def __post_init__(self) -> None:
        total = self.heavy_fraction + self.medium_fraction
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                "heavy_fraction + medium_fraction must be within [0, 1], "
                f"got {total}"
            )

    @property
    def is_balanced(self) -> bool:
        return self.uniform_flops is not None


def balanced(flops: float = MEDIUM_FLOPS) -> CostDistribution:
    """Every functional operator costs ``flops`` per tuple."""
    return CostDistribution(name=f"balanced({flops:g})", uniform_flops=flops)


def skewed(
    heavy_fraction: float = HEAVY_FRACTION,
    medium_fraction: float = MEDIUM_FRACTION,
    heavy_flops: float = HEAVY_FLOPS,
    medium_flops: float = MEDIUM_FLOPS,
    light_flops: float = LIGHT_FLOPS,
) -> CostDistribution:
    """The paper's 10 % heavy / 30 % medium / 60 % light distribution."""
    return CostDistribution(
        name=f"skewed({heavy_fraction:.0%}/{medium_fraction:.0%})",
        heavy_fraction=heavy_fraction,
        medium_fraction=medium_fraction,
        heavy_flops=heavy_flops,
        medium_flops=medium_flops,
        light_flops=light_flops,
    )


def assign_costs(
    graph: StreamGraph,
    distribution: CostDistribution,
    rng: Optional[np.random.Generator] = None,
) -> StreamGraph:
    """Return a new graph with functional-operator costs re-assigned.

    For skewed distributions the heavy/medium/light classes are placed
    uniformly at random (seeded via ``rng``), mirroring "we randomly
    place the heavy-, medium- and light-weight operators in the graph
    without any prior knowledge".
    """
    functional = [
        op.index
        for op in graph
        if not op.is_source and not op.is_sink
    ]
    costs: Dict[int, float] = {}
    if distribution.is_balanced:
        assert distribution.uniform_flops is not None
        for idx in functional:
            costs[idx] = distribution.uniform_flops
        return graph.replace_costs(costs)

    if rng is None:
        rng = np.random.default_rng(0)
    n = len(functional)
    n_heavy = int(round(distribution.heavy_fraction * n))
    n_medium = int(round(distribution.medium_fraction * n))
    n_heavy = min(n_heavy, n)
    n_medium = min(n_medium, n - n_heavy)
    shuffled = list(functional)
    rng.shuffle(shuffled)
    heavy = shuffled[:n_heavy]
    medium = shuffled[n_heavy : n_heavy + n_medium]
    light = shuffled[n_heavy + n_medium :]
    for idx in heavy:
        costs[idx] = distribution.heavy_flops
    for idx in medium:
        costs[idx] = distribution.medium_flops
    for idx in light:
        costs[idx] = distribution.light_flops
    return graph.replace_costs(costs)


def cost_classes(
    graph: StreamGraph,
    heavy_flops: float = HEAVY_FLOPS,
    medium_flops: float = MEDIUM_FLOPS,
) -> Tuple[List[int], List[int], List[int]]:
    """Partition functional operators into (heavy, medium, light) classes.

    Classification is by threshold against the canonical class costs;
    useful for asserting distribution invariants in tests and for the
    phase-change workload generator.
    """
    heavy: List[int] = []
    medium: List[int] = []
    light: List[int] = []
    for op in graph:
        if op.is_source or op.is_sink:
            continue
        if op.cost_flops >= heavy_flops:
            heavy.append(op.index)
        elif op.cost_flops >= medium_flops:
            medium.append(op.index)
        else:
            light.append(op.index)
    return heavy, medium, light
