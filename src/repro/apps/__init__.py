"""Mini-applications and workloads from the paper's evaluation."""

from . import packet_analysis, vwap, wordcount, workloads
from .packet_analysis import build_packet_analysis
from .vwap import build_vwap
from .wordcount import build_wordcount
from .workloads import (
    PhaseChangeWorkload,
    diurnal_cycle,
    phase_change,
    scaled_workload,
    spike,
)

__all__ = [
    "packet_analysis",
    "vwap",
    "wordcount",
    "workloads",
    "build_packet_analysis",
    "build_vwap",
    "build_wordcount",
    "PhaseChangeWorkload",
    "diurnal_cycle",
    "spike",
    "phase_change",
    "scaled_workload",
]
