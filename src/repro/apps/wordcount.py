"""WikiWordCount — the paper's SPL example (Fig. 2), as a stream graph.

The SPL composite retrieves Wikipedia recent changes, tokenizes pages
into words with 5 data-parallel custom operators, counts words in a
partitioned sliding-window aggregate with width 10, and publishes over
a websocket.  We model the same shape:

    HTTPGetStream -> @parallel(5) Tokenize -> @parallel(10) Aggregate
                  -> WebSocketSend

The tokenizer has selectivity > 1 (a page yields many words), which
exercises the rate-propagation paths of the region decomposition and
performance model.  Used by the examples and as an integration-test
workload.
"""

from __future__ import annotations

from ..graph.builder import GraphBuilder
from ..graph.model import FanoutPolicy, StreamGraph

TOKENIZE_WIDTH = 5
AGGREGATE_WIDTH = 10
WORDS_PER_PAGE = 40.0


def build_wordcount(
    payload_bytes: int = 64,
    words_per_page: float = WORDS_PER_PAGE,
) -> StreamGraph:
    """Construct the WikiWordCount topology.

    The graph carries one tuple spec, so ``payload_bytes`` should model
    the *dominant* traffic: with selectivity 40 at the tokenizers, word
    tuples outnumber page tuples 40:1, hence the small default.  (Pass
    a page-sized payload to study the opposite regime, where every
    queue crossing is charged a page copy and manual threading wins.)
    """
    b = GraphBuilder("wiki-wordcount", payload_bytes=payload_bytes)
    src = b.add_source("HTTPGetStream", cost_flops=100.0)

    split = b.add_operator(
        "PageSplit", cost_flops=20.0, fanout=FanoutPolicy.SPLIT
    )
    b.connect(src, split)

    tokenizers = []
    for i in range(TOKENIZE_WIDTH):
        op = b.add_operator(
            f"Tokenize{i}",
            cost_flops=1_500.0,
            selectivity=words_per_page,
        )
        b.connect(split, op)
        tokenizers.append(op)

    shuffle = b.add_operator(
        "PartitionBy", cost_flops=30.0, fanout=FanoutPolicy.SPLIT
    )
    for op in tokenizers:
        b.connect(op, shuffle)

    aggregates = []
    for i in range(AGGREGATE_WIDTH):
        op = b.add_operator(f"Aggregate{i}", cost_flops=300.0)
        b.connect(shuffle, op)
        aggregates.append(op)

    merge = b.add_operator("CountsMerge", cost_flops=20.0)
    for op in aggregates:
        b.connect(op, merge)

    snk = b.add_sink("WebSocketSend", cost_flops=50.0)
    b.connect(merge, snk)
    return b.build()
