"""Workload generators and phase-change schedules (Fig. 13).

The paper demonstrates adaptation to workload change on a 100-operator
pipeline whose heavy-weight operator ratio jumps from 10 % to 90 %
twenty minutes into the run.  :func:`phase_change` builds the pair of
graphs and the event schedule the executor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..graph.cost import skewed, assign_costs
from ..graph.model import StreamGraph
from ..graph.topologies import pipeline


@dataclass(frozen=True)
class PhaseChangeWorkload:
    """A two-phase workload for adaptation experiments."""

    initial: StreamGraph
    changed: StreamGraph
    change_time_s: float

    def events(self) -> List[Tuple[float, StreamGraph]]:
        """Workload events in the executor's format."""
        return [(self.change_time_s, self.changed)]


def phase_change(
    n_operators: int = 100,
    initial_heavy_fraction: float = 0.10,
    changed_heavy_fraction: float = 0.90,
    change_time_s: float = 1200.0,
    payload_bytes: int = 1024,
    seed: int = 0,
) -> PhaseChangeWorkload:
    """Build the Fig. 13 workload.

    Both phases use the skewed distribution machinery; the second phase
    re-assigns costs so that ``changed_heavy_fraction`` of the operators
    are heavy-weight.  The same seed places classes consistently so the
    change is a genuine workload shift, not a topology change.
    """
    base = pipeline(n_operators, payload_bytes=payload_bytes)
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    initial = assign_costs(
        base,
        skewed(heavy_fraction=initial_heavy_fraction, medium_fraction=0.30),
        rng=rng_a,
    )
    medium_fraction = min(0.30, max(0.0, 1.0 - changed_heavy_fraction))
    changed = assign_costs(
        base,
        skewed(
            heavy_fraction=changed_heavy_fraction,
            medium_fraction=medium_fraction,
        ),
        rng=rng_b,
    )
    return PhaseChangeWorkload(
        initial=initial, changed=changed, change_time_s=change_time_s
    )


def diurnal_cycle(
    graph: StreamGraph,
    period_s: float = 3600.0,
    n_cycles: int = 2,
    low_factor: float = 0.2,
    high_factor: float = 2.0,
    steps_per_cycle: int = 4,
) -> List[Tuple[float, StreamGraph]]:
    """A repeating load cycle (day/night), as executor workload events.

    Generates ``steps_per_cycle`` discrete load levels per cycle,
    interpolated between ``low_factor`` and ``high_factor`` of the base
    workload, repeated ``n_cycles`` times.  Streaming deployments are
    long-running precisely because load has this shape; the elastic
    runtime must track it without operator intervention.
    """
    if period_s <= 0 or n_cycles < 1 or steps_per_cycle < 2:
        raise ValueError("invalid diurnal cycle parameters")
    import math

    events: List[Tuple[float, StreamGraph]] = []
    step_s = period_s / steps_per_cycle
    for cycle in range(n_cycles):
        for step in range(steps_per_cycle):
            t = cycle * period_s + step * step_s
            phase = 2.0 * math.pi * step / steps_per_cycle
            # Sinusoid between low and high.
            level = low_factor + (high_factor - low_factor) * (
                0.5 - 0.5 * math.cos(phase)
            )
            events.append((t, scaled_workload(graph, level)))
    return events


def spike(
    graph: StreamGraph,
    spike_time_s: float,
    spike_duration_s: float,
    factor: float = 5.0,
) -> List[Tuple[float, StreamGraph]]:
    """A transient load spike: base -> spike -> base.

    Tests both directions of adaptation: the runtime must scale up into
    the spike and release the extra resources after it passes.
    """
    if spike_duration_s <= 0:
        raise ValueError("spike_duration_s must be > 0")
    return [
        (spike_time_s, scaled_workload(graph, factor)),
        (spike_time_s + spike_duration_s, graph),
    ]


def scaled_workload(
    graph: StreamGraph, factor: float
) -> StreamGraph:
    """Uniformly scale every functional operator's cost by ``factor``.

    A simpler workload shift used in tests (e.g. to verify that the
    stable-mode detector reacts to both load increases and decreases).
    """
    if factor <= 0:
        raise ValueError(f"factor must be > 0, got {factor}")
    costs = {
        op.index: op.cost_flops * factor
        for op in graph
        if not op.is_source and not op.is_sink
    }
    return graph.replace_costs(costs)
