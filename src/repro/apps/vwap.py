"""VWAP mini-application (§4.2, Fig. 14(a)).

Volume-Weighted Average Price: "detect bargains and trading
opportunities based on processing the volume-weighted average price
from bids and quotes."  The paper's deployment has 52 operators, a low
tuple payload and light per-tuple computation — which is why the
threading model elasticity only adds value at low core counts (Fig.
15(a)).

Topology (52 operators):

    TradeQuote source
      -> parse chain (4)
      -> split (1)
      -> trade filter chain (6)      -> quote filter chain (6)
      -> VWAP aggregation, data-parallel width 8, depth 2 (16)
      -> VWAP merge (1)
      -> bargain-index workers (8)
      -> join (1)
      -> export chain (7)
      -> sink (1)

The *hand-optimized* configuration reproduces the developers' 9
hand-inserted threaded ports: queues at the split, at half of the VWAP
aggregation heads, at the bargain-index head, the VWAP merge, the
export head and the sink — run with 9 threads.
"""

from __future__ import annotations

from typing import List, Tuple

from ..graph.builder import GraphBuilder
from ..graph.model import FanoutPolicy, StreamGraph
from ..runtime.queues import QueuePlacement

VWAP_OPERATOR_COUNT = 52
HAND_OPTIMIZED_THREADS = 9

_PARSE_FLOPS = 2_000.0
_FILTER_FLOPS = 1_000.0
_VWAP_FLOPS = 5_000.0
_BARGAIN_FLOPS = 3_000.0
_EXPORT_FLOPS = 500.0
_PAYLOAD_BYTES = 64


def build_vwap(payload_bytes: int = _PAYLOAD_BYTES) -> StreamGraph:
    """Construct the 52-operator VWAP graph."""
    b = GraphBuilder("vwap", payload_bytes=payload_bytes)
    src = b.add_source("TradeQuote", cost_flops=10.0)

    prev = src
    for i in range(4):
        op = b.add_operator(f"Parse{i}", cost_flops=_PARSE_FLOPS)
        b.connect(prev, op)
        prev = op

    split = b.add_operator("Split", cost_flops=_FILTER_FLOPS)
    # Split broadcasts: trades and quotes are different *filters* over
    # the same stream, not a data-parallel distribution.
    b.connect(prev, split)

    trade_prev = split
    for i in range(6):
        fan = (
            FanoutPolicy.SPLIT if i == 5 else FanoutPolicy.BROADCAST
        )  # the last trade filter feeds the data-parallel VWAP section
        op = b.add_operator(
            f"TradeFilter{i}", cost_flops=_FILTER_FLOPS, fanout=fan
        )
        b.connect(trade_prev, op)
        trade_prev = op

    quote_prev = split
    for i in range(6):
        fan = (
            FanoutPolicy.SPLIT if i == 5 else FanoutPolicy.BROADCAST
        )  # the last quote filter feeds the partitioned bargain join
        op = b.add_operator(
            f"QuoteFilter{i}", cost_flops=_FILTER_FLOPS, fanout=fan
        )
        b.connect(quote_prev, op)
        quote_prev = op

    # VWAP aggregation: 8 data-parallel paths of depth 2, fed by the
    # trade branch (trades carry the volume/price information).
    vwap_tails = []
    for p in range(8):
        head = b.add_operator(f"VwapAgg{p}", cost_flops=_VWAP_FLOPS)
        tail = b.add_operator(f"VwapCalc{p}", cost_flops=_VWAP_FLOPS)
        b.connect(trade_prev, head)
        b.connect(head, tail)
        vwap_tails.append(tail)

    merge = b.add_operator(
        "VwapMerge", cost_flops=_FILTER_FLOPS, fanout=FanoutPolicy.SPLIT
    )
    for tail in vwap_tails:
        b.connect(tail, merge)

    # Bargain index: correlate the VWAP stream with the quote stream.
    bargains = []
    for p in range(8):
        op = b.add_operator(f"BargainIndex{p}", cost_flops=_BARGAIN_FLOPS)
        b.connect(merge, op)
        b.connect(quote_prev, op)
        bargains.append(op)

    join = b.add_operator("BargainJoin", cost_flops=_FILTER_FLOPS)
    for op in bargains:
        b.connect(op, join)

    prev = join
    for i in range(7):
        op = b.add_operator(f"Export{i}", cost_flops=_EXPORT_FLOPS)
        b.connect(prev, op)
        prev = op

    snk = b.add_sink("Sink", cost_flops=10.0)
    b.connect(prev, snk)

    graph = b.build()
    assert len(graph) == VWAP_OPERATOR_COUNT, len(graph)
    return graph


def hand_optimized(
    graph: StreamGraph,
) -> Tuple[QueuePlacement, int]:
    """The developers' hand-tuned configuration: 9 threaded ports.

    Returns the placement and the matching fixed thread count.
    """
    names = [
        "Split",
        "VwapAgg0",
        "VwapAgg2",
        "VwapAgg4",
        "VwapAgg6",
        "VwapMerge",
        "BargainIndex0",
        "Export0",
        "Sink",
    ]
    indices: List[int] = [graph.by_name(n).index for n in names]
    placement = QueuePlacement.of(indices)
    placement.validate(graph)
    assert placement.n_queues == HAND_OPTIMIZED_THREADS
    return placement, HAND_OPTIMIZED_THREADS
