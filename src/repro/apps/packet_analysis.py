"""PacketAnalysis production application (§4.3, Fig. 14(b)).

A network-monitoring and threat-analysis application built by IBM for a
telecommunications company.  The real deployment ingests packets from a
10 Gb/s NIC through DPDK and replays a PCAP of DNS traffic; neither is
available here, so we build a synthetic topology with the paper's
published structure:

- the 1-source variant has **387 operators**, the 8-source variant
  **2305 operators** (387 = 274 + 113, 2305 = 8 x 274 + 113: a
  274-operator per-source analysis complex plus a 113-operator shared
  aggregation tail);
- each source complex (1 source + 7 ingest + 77 DGA + 62 tunneling +
  126 volumetric + 1 merge = 274): DPDK ingest chain, then three branches
  — DGA detection (computationally heavy), tunneling detection
  (medium) and volumetric pre-analysis (medium-light) — each a
  data-parallel section between a distribution head and a merge;
- tuples are small (~256 B) relative to the expensive analytics, which
  is exactly why the paper observed only marginal gains from threading
  model elasticity on this application.

The *hand-optimized* configuration reproduces the developers' manual
tuning: 16 threaded ports per source complex plus one on the shared
collector — 17 threads for 1 source, 129 for 8 sources.
"""

from __future__ import annotations

from typing import List, Tuple

from ..graph.builder import GraphBuilder
from ..graph.model import FanoutPolicy, Operator, StreamGraph
from ..runtime.queues import QueuePlacement

PACKET_PAYLOAD_BYTES = 256
LINE_RATE_TUPLES_PER_S = 30_000.0
OPERATORS_PER_SOURCE_COMPLEX = 274
SHARED_TAIL_OPERATORS = 113
ONE_SOURCE_OPERATORS = 387
EIGHT_SOURCE_OPERATORS = 2305

_INGEST_FLOPS = 20.0
_MERGE_SELECTIVITY = 0.05
_DGA_FLOPS = 50_000.0
_TUNNEL_FLOPS = 15_000.0
_VOLUMETRIC_FLOPS = 3_000.0
_TAIL_FLOPS = 100.0


def _analysis_branch(
    b: GraphBuilder,
    upstream: Operator,
    name: str,
    width: int,
    depth: int,
    cost_flops: float,
) -> Operator:
    """Head -> width x depth data-parallel section -> merge.

    Returns the merge operator.  Operator count: 2 + width * depth.
    """
    head = b.add_operator(
        f"{name}Head", cost_flops=_INGEST_FLOPS, fanout=FanoutPolicy.SPLIT
    )
    b.connect(upstream, head)
    # Analysis branches aggregate: DGA/tunneling emit rare alerts,
    # volumetric emits windowed summaries.  Only a small fraction of
    # per-packet tuples survives into the shared reporting tail, so the
    # tail never dominates the analytics (matching the paper: the
    # pipelines are the expensive part while tuples stay small).
    merge = b.add_operator(
        f"{name}Merge",
        cost_flops=_INGEST_FLOPS,
        selectivity=_MERGE_SELECTIVITY,
    )
    for w in range(width):
        prev: Operator = head
        for d in range(depth):
            op = b.add_operator(
                f"{name}W{w}D{d}", cost_flops=cost_flops
            )
            b.connect(prev, op)
            prev = op
        b.connect(prev, merge)
    return merge


def _source_complex(
    b: GraphBuilder,
    source_id: int,
    line_rate_tuples_per_s: "float | None" = None,
) -> Operator:
    """One source's 274-operator analysis complex; returns its merge."""
    tag = f"S{source_id}"
    src = b.add_source(
        f"{tag}DpdkSource",
        cost_flops=50.0,
        max_rate=line_rate_tuples_per_s,
    )
    prev: Operator = src
    for i in range(7):
        op = b.add_operator(f"{tag}Ingest{i}", cost_flops=_INGEST_FLOPS)
        b.connect(prev, op)
        prev = op
    dga = _analysis_branch(b, prev, f"{tag}Dga", 5, 15, _DGA_FLOPS)
    tunnel = _analysis_branch(
        b, prev, f"{tag}Tunnel", 4, 15, _TUNNEL_FLOPS
    )
    volumetric = _analysis_branch(
        b, prev, f"{tag}Volumetric", 4, 31, _VOLUMETRIC_FLOPS
    )
    out = b.add_operator(f"{tag}ComplexMerge", cost_flops=_INGEST_FLOPS)
    b.connect(dga, out)
    b.connect(tunnel, out)
    b.connect(volumetric, out)
    return out


def build_packet_analysis(
    n_sources: int = 1,
    payload_bytes: int = PACKET_PAYLOAD_BYTES,
    line_rate_tuples_per_s: "float | None" = LINE_RATE_TUPLES_PER_S,
) -> StreamGraph:
    """Construct the PacketAnalysis topology with ``n_sources`` sources.

    ``line_rate_tuples_per_s`` caps each DPDK source's ingest rate —
    "PacketAnalysis must operate as close to line-rate as possible,
    since it processes live packets".  The cap is what makes every
    sufficiently parallel execution land at the same throughput in the
    paper's Fig. 15(b): elastic schemes with 8-20 threads match the
    129-thread hand-optimized version because all of them keep up with
    the wire.
    """
    if n_sources < 1:
        raise ValueError(f"n_sources must be >= 1, got {n_sources}")
    b = GraphBuilder(
        f"packet-analysis-{n_sources}src", payload_bytes=payload_bytes
    )
    complex_merges = [
        _source_complex(b, s, line_rate_tuples_per_s)
        for s in range(n_sources)
    ]
    collector = b.add_operator("Collector", cost_flops=_TAIL_FLOPS)
    for m in complex_merges:
        b.connect(m, collector)
    prev: Operator = collector
    for i in range(111):
        op = b.add_operator(f"Tail{i}", cost_flops=_TAIL_FLOPS)
        b.connect(prev, op)
        prev = op
    snk = b.add_sink("Sink", cost_flops=20.0)
    b.connect(prev, snk)

    graph = b.build()
    expected = n_sources * OPERATORS_PER_SOURCE_COMPLEX + SHARED_TAIL_OPERATORS
    assert len(graph) == expected, (len(graph), expected)
    return graph


def hand_optimized(graph: StreamGraph) -> Tuple[QueuePlacement, int]:
    """The developers' hand-inserted threaded ports.

    16 per source complex (the three branch heads and merges, plus a
    spread of DGA workers — the expensive branch), one on the shared
    collector: 17 threads at 1 source, 129 at 8 sources.
    """
    indices: List[int] = []
    n_sources = len(graph.sources)
    for s in range(n_sources):
        tag = f"S{s}"
        names = [
            f"{tag}DgaHead",
            f"{tag}DgaMerge",
            f"{tag}TunnelHead",
            f"{tag}TunnelMerge",
            f"{tag}VolumetricHead",
            f"{tag}VolumetricMerge",
            f"{tag}ComplexMerge",
        ]
        # Spread the remaining 9 ports at the heads of the heavy
        # data-parallel paths, so each expensive path becomes its own
        # region (what a performance engineer would do).
        names += [f"{tag}DgaW{w}D0" for w in range(5)]
        names += [f"{tag}TunnelW{w}D0" for w in range(4)]
        indices.extend(graph.by_name(n).index for n in names)
    indices.append(graph.by_name("Collector").index)
    placement = QueuePlacement.of(indices)
    placement.validate(graph)
    threads = 16 * n_sources + 1
    assert placement.n_queues == threads
    return placement, threads
