"""repro: reproduction of "Automating Multi-level Performance Elastic
Components for IBM Streams" (Middleware '19).

Public API tour
---------------
- :mod:`repro.graph` — build stream graphs (operators, streams,
  topology generators, cost distributions).
- :mod:`repro.runtime` — the simulated SPL processing element: queue
  placements, region fusion, the adaptation executor.
- :mod:`repro.core` — the paper's contribution: threading model
  elasticity, thread count elasticity and the multi-level coordinator,
  plus the SASO trace analysis.
- :mod:`repro.perfmodel` — the calibrated analytical machine substrate
  (Xeon / POWER8 profiles).
- :mod:`repro.des` — a tuple-level discrete-event simulator used to
  validate the analytical model.
- :mod:`repro.apps` — VWAP, PacketAnalysis, WikiWordCount and workload
  generators.
- :mod:`repro.bench` — baselines and per-figure experiment harness.

Quickstart
----------
>>> from repro.graph import pipeline
>>> from repro.perfmodel import xeon_176
>>> from repro.runtime import ProcessingElement, RuntimeConfig, run_elastic
>>> graph = pipeline(100, payload_bytes=1024)
>>> machine = xeon_176().with_cores(16)
>>> pe = ProcessingElement(graph, machine, RuntimeConfig(cores=16))
>>> result = run_elastic(pe, duration_s=3000)
>>> result.final_threads >= 1
True
"""

__version__ = "1.0.0"

__all__ = ["graph", "runtime", "core", "perfmodel", "des", "apps", "bench"]
