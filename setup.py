"""Setup shim for environments without the `wheel` package.

`pip install -e .` on modern pip builds an editable wheel, which requires
the `wheel` distribution; this offline environment lacks it.  The shim
lets `python setup.py develop` (and legacy pip flows) work instead.
"""
from setuptools import setup

setup()
