"""Profiled-adaptation microbenchmark: the fast path under profiling.

Times the profiled 8-operator adaptation scenario (§3.1 + Fig. 7 on
the DES substrate) in two configurations:

- **before** — the previous design: unprofiled measurement runs plus a
  dedicated *fine-grained* profiling run (per-operator time
  advancement, no coalescing) each time the coordinator asks for
  profiling groups; measurement memoization off.
- **after** — this PR's path: continuous sampled-accounting profiling
  (the profiler rides inside every measurement run while the engine
  keeps its coalesced fast path) plus measurement memoization.

Because sampled profiling is non-intrusive — a profiled measurement
returns exactly what an unprofiled one would — and memoized cells are
replayed deterministically, the two configurations must walk the
*same* R1-R5/Fig. 7 decision sequence to the same final
``(threads, placement)``; the assertion below enforces that, so the
speedup can never come from the adaptation quietly behaving
differently.

Emits ``benchmarks/results/BENCH_adaptation.json`` with before/after
wall seconds and kernel events/s, tracked per PR next to
``BENCH_des.json``.
"""

from __future__ import annotations

from _bench_util import record, record_json, run_once

from repro.bench.figures import fig07_des_adaptation

MAX_PERIODS = 200

# Floors are deliberately conservative (CI boxes vary); the reference
# box measures ~7.5x wall speedup and ~350k executed events/s on the
# "after" configuration.
MIN_WALL_SPEEDUP = 5.0
MIN_EVENTS_PER_S = 50_000.0


def _run_before_after():
    before = fig07_des_adaptation(
        sampled_profiling=False, memoize=False, max_periods=MAX_PERIODS
    )
    after = fig07_des_adaptation(
        sampled_profiling=True, memoize=True, max_periods=MAX_PERIODS
    )
    return before, after


def test_profiled_adaptation_fast_path(benchmark):
    before, after = run_once(benchmark, _run_before_after)

    speedup = before.wall_s / after.wall_s
    after_events_per_s = after.sim_events / after.wall_s

    def row(s):
        return {
            "wall_s": round(s.wall_s, 4),
            "sim_events": s.sim_events,
            "events_per_s": round(s.sim_events / s.wall_s, 1),
            "final_threads": s.final_threads,
            "final_queues": list(s.final_queues),
            "converged_throughput": round(s.converged_throughput, 1),
            "cache_hits": s.cache_hits,
            "cache_misses": s.cache_misses,
        }

    record_json(
        "BENCH_adaptation",
        {
            "scenario": (
                "pipeline(8 ops, 4000 FLOPs, 128 B) | laptop(4 cores) | "
                f"profile_from_execution | {MAX_PERIODS} periods x "
                "(1 ms warmup + 4 ms measured)"
            ),
            "before_fine_grained_no_memo": row(before),
            "after_sampled_memoized": row(after),
            "wall_speedup": round(speedup, 2),
            "sim_events_ratio": round(
                before.sim_events / max(1, after.sim_events), 2
            ),
            "decisions_equal": before.decisions == after.decisions,
            "n_decisions": len(after.decisions),
        },
    )
    record(
        "adaptation_fast_path",
        "\n".join(
            [
                "Profiled adaptation -- sampled accounting + memoization",
                f"  before (fine, no memo) {before.wall_s:8.3f} s  "
                f"{before.sim_events:10,d} events",
                f"  after  (sampled+memo)  {after.wall_s:8.3f} s  "
                f"{after.sim_events:10,d} events",
                f"  wall speedup    {speedup:6.2f}x",
                f"  cache hits      {after.cache_hits}"
                f" / {after.cache_hits + after.cache_misses} lookups",
                f"  final config    threads={after.final_threads} "
                f"queues={list(after.final_queues)}",
            ]
        ),
    )

    # Behavioural equivalence: same decision path, same destination.
    assert after.decisions == before.decisions, (
        "sampled+memoized run took a different R1-R5 decision sequence "
        "than the fine-grained baseline"
    )
    assert after.final_threads == before.final_threads
    assert after.final_queues == before.final_queues
    # The cache must actually be doing work in the after configuration.
    assert after.cache_hits > 0
    assert before.cache_hits == 0
    # Perf floors.
    assert speedup >= MIN_WALL_SPEEDUP, (
        f"profiled adaptation speedup regressed: {speedup:.2f}x is below "
        f"the {MIN_WALL_SPEEDUP:.1f}x floor"
    )
    assert after_events_per_s >= MIN_EVENTS_PER_S, (
        f"DES throughput regressed: {after_events_per_s:,.0f} events/s "
        f"is below the {MIN_EVENTS_PER_S:,.0f}/s floor"
    )
