"""Figure 1 — motivation: throughput vs. fraction of dynamic operators.

Paper setup: a chain of 100 operators, 100 FLOPs/tuple, payloads 1 B
and 1 KB, 16 and 88 cores.  Black lines: best static throughput per
fraction of operators under the dynamic threading model (after thread
elasticity settles).  Blue overlay: the proposed framework's automatic
result.

Shape assertions:
- the best fraction is interior (neither all-manual nor all-dynamic),
- the automatic framework reaches a large share of the static optimum,
- the optimal fraction does not grow when the payload grows.
"""

from __future__ import annotations

from _bench_util import record, run_once

from repro.bench.figures import fig01_motivation
from repro.bench.reporting import format_table


def test_fig01_motivation(benchmark):
    results = run_once(benchmark, lambda: fig01_motivation())

    rows = []
    for r in results:
        for fraction, threads, throughput in r.sweep:
            rows.append(
                [
                    f"{r.payload_bytes}B/{r.cores}c",
                    fraction,
                    threads,
                    throughput,
                ]
            )
        rows.append(
            [
                f"{r.payload_bytes}B/{r.cores}c",
                f"AUTO ({r.auto_fraction:.2f})",
                r.auto_threads,
                r.auto_throughput,
            ]
        )
    record(
        "fig01_motivation",
        format_table(
            ["config", "fraction dynamic", "best threads", "throughput T/s"],
            rows,
            title="Figure 1 -- 100-op chain, throughput vs fraction dynamic",
        ),
    )

    interior = 0
    for r in results:
        # Dynamic threading somewhere beats pure manual.
        assert r.best_sweep_throughput > 1.15 * r.manual_throughput
        if (
            r.best_sweep_throughput > 1.15 * r.full_dynamic_throughput
            and 0.0 < r.best_fraction < 1.0
        ):
            interior += 1
        # The automatic framework is competitive with the static oracle.
        assert r.auto_throughput > 0.55 * r.best_sweep_throughput
    # "The best throughput is not achieved when all operators are
    # executed under the dynamic threading model, and the optimal
    # configuration varies": most configurations have an interior
    # optimum (at 1 B payload with all 88 cores, full dynamic is
    # genuinely near-optimal -- copies are free).
    assert interior >= 2

    # Larger payloads shift the optimum toward fewer dynamic operators.
    by_key = {(r.payload_bytes, r.cores): r for r in results}
    assert (
        by_key[(1024, 88)].best_fraction
        <= by_key[(1, 88)].best_fraction
    )
