"""Figure 15(b) — the PacketAnalysis production application.

Paper setup: a hand-optimized telecom network-monitoring application
ingesting live packets at line rate through DPDK; 1-source (387
operators, 17 hand-inserted threads) and 8-source (2305 operators, 129
hand-inserted threads) variants on the 176-core Xeon.

Shape assertions (paper §4.3):
- the elastic executions approach the hand-optimized throughput,
- multi-level yields only a *marginal* difference over thread count
  elasticity (small ~256 B tuples, expensive analytics, line-rate
  bound),
- the elastic schemes use far fewer threads than the 129 hand-inserted
  ones on the 8-source variant.
"""

from __future__ import annotations

from _bench_util import record, run_once

from repro.bench.figures import fig15b_packet_analysis
from repro.bench.reporting import app_table


def test_fig15b_packet_analysis(benchmark):
    comparisons = run_once(
        benchmark, lambda: fig15b_packet_analysis(source_counts=(1, 8))
    )
    record(
        "fig15b_packet_analysis",
        app_table(
            comparisons,
            title="Figure 15(b) -- PacketAnalysis (387 / 2305 operators)",
        ),
    )

    for c in comparisons:
        assert c.hand_optimized is not None
        # Elastic schemes reach (at least) hand-optimized throughput.
        assert (
            c.multi_level.throughput > 0.9 * c.hand_optimized.throughput
        )
        assert c.dynamic.throughput > 0.9 * c.hand_optimized.throughput
        # Multi-level vs dynamic: marginal difference (paper: "only a
        # marginal performance difference").
        assert 0.85 < c.multi_over_dynamic < 1.2
        # Everything clearly beats single-region manual execution.
        assert c.multi_level_speedup > 2.0

    one_src = comparisons[0]
    # The paper's elastic runs used 8-20 threads (vs 17 hand-inserted).
    assert one_src.multi_level.threads <= 20
