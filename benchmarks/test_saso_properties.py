"""SASO property verification (§1, §4.4).

The control algorithm claims Stability / Accuracy / Settling time /
Overshoot-avoidance guarantees.  This bench quantifies all four on the
adaptation study's workload (skewed 500-operator pipeline) and on the
run-to-run variance claim from §3.1.1.
"""

from __future__ import annotations

from _bench_util import record, run_once

from repro.bench.figures import saso_analysis
from repro.bench.harness import run_multi_level
from repro.bench.reporting import format_table
from repro.graph import pipeline
from repro.perfmodel import xeon_176
from repro.runtime import RuntimeConfig


def test_saso_properties(benchmark):
    report, trace = run_once(
        benchmark, lambda: saso_analysis(n_operators=500)
    )
    record(
        "saso_properties",
        format_table(
            ["property", "value"],
            [
                ["oscillations after settling", report.stability_oscillations],
                ["accuracy vs static oracle", report.accuracy_ratio],
                ["settling time s", report.settling_time_s],
                ["settled fraction of run", report.settled_fraction],
                ["max threads during run", report.max_threads_used],
                ["final threads", report.final_threads],
            ],
            title="SASO properties (500-op skewed pipeline)",
        ),
    )
    # Stability: no ping-ponging once settled.
    assert report.stability_ok
    # Accuracy: within 2x of the static placement oracle.
    assert report.accuracy_ratio is not None
    assert report.accuracy_ratio > 0.5
    # Settling: the run ends in the coordinator's stable mode and no
    # configuration changes occur afterwards.  (The harness stops runs
    # shortly after stabilization, so the settled *fraction* of the
    # truncated trace is not meaningful.)
    assert trace.observations[-1].mode == "stable"
    assert trace.last_change_time() < trace.duration_s


def test_saso_run_to_run_variance(benchmark):
    """§3.1.1: arbitrary group selection -> little run-to-run variance."""
    graph = pipeline(100, payload_bytes=1024)
    machine = xeon_176().with_cores(88)

    def run_seeds():
        return [
            run_multi_level(
                graph, machine, RuntimeConfig(cores=88, seed=seed)
            ).throughput
            for seed in (1, 2, 3, 4, 5)
        ]

    outcomes = run_once(benchmark, run_seeds)
    record(
        "saso_variance",
        format_table(
            ["seed", "converged T/s"],
            [[i + 1, t] for i, t in enumerate(outcomes)],
            title="Run-to-run variance (5 seeds)",
        ),
    )
    assert max(outcomes) / min(outcomes) < 1.5
