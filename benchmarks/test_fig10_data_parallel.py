"""Figure 10 — pure data-parallel graphs.

Paper setup: data-parallel widths 50 and 100, payload sweep, Xeon.
Because the Snk operator guards its tuple counter with a lock, "as the
thread count increases, contention among threads on the Snk operator
also increases" — thread count elasticity alone can end up *worse* than
manual threading.

Shape assertions:
- dynamic-only falls below manual for at least one configuration,
- multi-level is "consistently equal or better than" manual,
- multi-level keeps only a small fraction of operators dynamic
  ("leading to a similar configuration as manual threading").
"""

from __future__ import annotations

from _bench_util import grid, record, run_once

from repro.bench.figures import fig10_data_parallel
from repro.bench.reporting import comparison_table


def test_fig10_data_parallel(benchmark):
    comparisons = run_once(
        benchmark,
        lambda: fig10_data_parallel(
            widths=(50, 100),
            payloads=grid(
                (128, 1024, 16384), (128, 512, 1024, 4096, 16384)
            ),
        ),
    )
    record(
        "fig10_data_parallel",
        comparison_table(
            comparisons, title="Figure 10 -- pure data-parallel graphs"
        ),
    )

    # Thread count elasticity alone can lose to manual threading.
    assert any(c.dynamic_speedup < 1.0 for c in comparisons)
    # Multi-level is consistently >= manual (tolerance for SENS noise).
    for c in comparisons:
        assert c.multi_level_speedup >= 0.95, c.workload
    # Multi-level ends close to manual configuration: few dynamic ops.
    for c in comparisons:
        assert c.multi_level.dynamic_ratio < 0.5, c.workload
