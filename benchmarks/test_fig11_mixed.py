"""Figure 11 — mixed pipeline / data-parallel graphs.

Paper setup: data-parallel width 10, per-path pipeline depth 50 or 100,
payload sweep — "a close representation of many realistic production
scenarios".

Shape assertions (paper: "the performance trends obtained here are
similar to those obtained in the previous cases"):
- multi-level's edge over dynamic grows with payload,
- the dynamic ratio falls with payload and operator count,
- multi-level beats manual clearly when payload is at least a few
  hundred bytes.
"""

from __future__ import annotations

from _bench_util import grid, record, run_once

from repro.bench.figures import fig11_mixed
from repro.bench.reporting import comparison_table


def test_fig11_mixed(benchmark):
    comparisons = run_once(
        benchmark,
        lambda: fig11_mixed(
            depths=(50, 100),
            payloads=grid(
                (128, 1024, 16384), (128, 512, 1024, 4096, 16384)
            ),
        ),
    )
    record(
        "fig11_mixed",
        comparison_table(
            comparisons,
            title="Figure 11 -- mixed pipeline/data-parallel (width 10)",
        ),
    )

    def cell(depth, payload):
        key = f"mixed(10x{depth}) {payload}B"
        return next(c for c in comparisons if c.workload == key)

    for depth in (50, 100):
        # Edge over dynamic grows with payload.
        assert (
            cell(depth, 16384).multi_over_dynamic
            > cell(depth, 128).multi_over_dynamic
        )
        # Dynamic ratio falls with payload.
        assert (
            cell(depth, 16384).multi_level.dynamic_ratio
            < cell(depth, 128).multi_level.dynamic_ratio
        )
        # Clear wins at >= a few hundred bytes.
        assert cell(depth, 1024).multi_level_speedup > 2.0
    # Gains grow with operator count (500 -> 1000 operators).
    assert (
        cell(100, 1024).multi_level_speedup
        >= 0.8 * cell(50, 1024).multi_level_speedup
    )
