"""Warm-start adaptation: settling time and lost throughput vs cold.

Three variants per scenario, all through the scenario zoo and the
``AdaptationBackend`` surface:

- **cold** — stock behaviour (warm start off),
- **model** — seeded from the analytical perfmodel prior,
- **store** — seeded from a phase store populated by a prior run
  (the posterior; ``auto`` mode with a shared ``REPRO_MEMO_DIR``).

Metrics per run:

- *settling periods* — for the saturated stationary scenarios, the
  first period whose throughput is within 5 % of the run's converged
  throughput and stays within for the rest of the run; for the
  open-loop time-varying scenario (underloaded, so throughput tracks
  the envelope regardless of configuration) the first period at which
  the coordinator reaches STABLE,
- *lost throughput* — cumulative ``max(0, T_conv - T_k) * period_s``:
  the tuples the run failed to process while still searching.

Gates (the PR's acceptance criteria):

- fig07-pipeline-saturated with a warm phase store converges in at
  least 2x fewer periods than cold,
- on every benchmarked scenario the store-warmed run settles >= 2x
  faster and loses no more throughput than cold,
- the time-varying flash-crowd scenario snaps back to the remembered
  base-phase operating point in ONE period (F7-WARM-SNAP at period 1
  against the phase recorded by the previous run, under the same
  time-varying envelope).
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from _bench_util import record, record_json, run_once

from repro.bench import cache
from repro.bench.reporting import format_table
from repro.obs.hub import ObservabilityHub
from repro.scenarios import compile_scenario, load_scenario
from repro.scenarios.run import make_backend

SENS = 0.05

# (scenario, max_periods, stop_after_stable_periods)
STATIONARY = (
    ("fig07-pipeline-saturated", 160, 8),
    ("skewed-cost-pipeline", 60, 8),
    ("tree-bushy", 60, 8),
)
TIME_VARYING = ("flash-crowd-spike", 30, 4)


def _compiled(name: str, max_periods: int, stop_after: Optional[int]):
    """Load a zoo scenario with a horizon long enough to converge.

    The zoo pins short horizons for fast regression runs; the
    benchmark needs full convergence, so only the run-length knobs
    are overridden — topology, workload and machine stay the zoo's.
    """
    from dataclasses import replace

    scenario = load_scenario(f"scenarios/{name}.yaml")
    scenario = replace(
        scenario,
        run=replace(
            scenario.run,
            backend=scenario.run.backend,
            max_periods=max_periods,
            stop_after_stable_periods=stop_after,
        ),
    )
    return compile_scenario(scenario)


def _run(compiled, warm_start: Optional[str], max_periods, stop_after):
    cache.clear()
    hub = ObservabilityHub()
    backend = make_backend(compiled, obs=hub, warm_start=warm_start)
    result = backend.run(
        max_periods=max_periods, stop_after_stable_periods=stop_after
    )
    rules = tuple(d.rule for d in hub.decisions())
    return result.trace, rules


def _settling(
    trace, period_s: float, start: int = 0
) -> Tuple[int, float, float]:
    """(settling periods, lost throughput, converged T) from ``start``.

    Settling is the first period (1-based, relative to ``start``)
    whose throughput is within SENS of the converged value *and stays
    within* for the rest of the run; lost throughput integrates the
    shortfall against the converged value over the same window.
    """
    obs = [o.true_throughput for o in trace.observations[start:]]
    tail = obs[-4:]
    conv = sum(tail) / len(tail)
    settle = len(obs)
    for i in range(len(obs)):
        if all(abs(o / conv - 1.0) <= SENS for o in obs[i:]):
            settle = i + 1
            break
    lost = sum(max(0.0, conv - o) * period_s for o in obs)
    return settle, lost, conv


def _stable_settle(rules: Tuple[str, ...]) -> int:
    """Periods before the coordinator first reached STABLE."""
    return rules.index("F7-STABLE") if "F7-STABLE" in rules else len(rules)


def _bench_stationary(store_dir: str):
    rows = []
    payload = {}
    for name, max_periods, stop_after in STATIONARY:
        compiled = _compiled(name, max_periods, stop_after)
        period_s = compiled.config.elasticity.adaptation_period_s
        os.environ["REPRO_MEMO_DIR"] = os.path.join(store_dir, name)
        try:
            cold_trace, _ = _run(compiled, "off", max_periods, stop_after)
            model_trace, model_rules = _run(
                compiled, "model", max_periods, stop_after
            )
            # Pass 1 populates the phase store, pass 2 is the warmed run.
            _run(compiled, "auto", max_periods, stop_after)
            store_trace, store_rules = _run(
                compiled, "auto", max_periods, stop_after
            )
        finally:
            del os.environ["REPRO_MEMO_DIR"]
        assert "F7-WARM-START" in model_rules, name
        assert "F7-WARM-SNAP" in store_rules, name
        variants = {}
        for variant, trace in (
            ("cold", cold_trace),
            ("model", model_trace),
            ("store", store_trace),
        ):
            settle, lost, conv = _settling(trace, period_s)
            variants[variant] = {
                "settling_periods": settle,
                "lost_throughput": lost,
                "converged_throughput": conv,
                "periods": len(trace.observations),
            }
            rows.append(
                [
                    name,
                    variant,
                    settle,
                    f"{lost:,.0f}",
                    f"{conv:,.0f}",
                ]
            )
        payload[name] = variants
    return rows, payload


def _bench_time_varying(store_dir: str):
    """Flash crowd: the base workload phase recurs (here: across runs
    of the same time-varying envelope; pass 1 converges and records
    it), and the warmed run must snap back to the last-known-good
    operating point in one period instead of re-exploring.

    The scenario is open-loop and underloaded outside the crowd, so
    throughput tracks the envelope whatever the configuration; the
    settling signal is therefore the coordinator's own state — the
    number of periods before it first reaches STABLE."""
    name, max_periods, stop_after = TIME_VARYING
    compiled = _compiled(name, max_periods, stop_after)
    period_s = compiled.config.elasticity.adaptation_period_s
    os.environ["REPRO_MEMO_DIR"] = os.path.join(store_dir, name)
    try:
        cold_trace, cold_rules = _run(
            compiled, "off", max_periods, stop_after
        )
        _run(compiled, "auto", max_periods, stop_after)
        warm_trace, warm_rules = _run(
            compiled, "auto", max_periods, stop_after
        )
    finally:
        del os.environ["REPRO_MEMO_DIR"]
    cold_settle = _stable_settle(cold_rules)
    warm_settle = _stable_settle(warm_rules)
    _, cold_lost, cold_conv = _settling(cold_trace, period_s)
    _, warm_lost, warm_conv = _settling(warm_trace, period_s)
    # 1-period snap-back: the stored base-phase point is restored by
    # the very first decision of the warmed run.
    assert warm_rules[0] == "F7-WARM-SNAP", warm_rules[:3]
    rows = [
        [name, "cold", cold_settle, f"{cold_lost:,.0f}", f"{cold_conv:,.0f}"],
        [name, "store", warm_settle, f"{warm_lost:,.0f}", f"{warm_conv:,.0f}"],
    ]
    payload = {
        name: {
            "settling_metric": "periods-to-stable",
            "cold": {
                "settling_periods": cold_settle,
                "lost_throughput": cold_lost,
                "converged_throughput": cold_conv,
            },
            "store": {
                "settling_periods": warm_settle,
                "lost_throughput": warm_lost,
                "converged_throughput": warm_conv,
            },
        }
    }
    return rows, payload


def test_warmstart_settling(benchmark, tmp_path):
    def experiment():
        rows: List[list] = []
        payload = {}
        srows, spayload = _bench_stationary(str(tmp_path))
        rows += srows
        payload.update(spayload)
        trows, tpayload = _bench_time_varying(str(tmp_path))
        rows += trows
        payload.update(tpayload)
        return rows, payload

    rows, payload = run_once(benchmark, experiment)
    record(
        "warmstart_settling",
        format_table(
            [
                "scenario",
                "variant",
                "settle (periods)",
                "lost (tuples)",
                "converged T/s",
            ],
            rows,
            title="Warm-start adaptation vs cold start",
        ),
    )
    record_json("BENCH_warmstart", payload)

    for name, _, _ in STATIONARY:
        v = payload[name]
        cold, store = v["cold"], v["store"]
        # The headline gate: a warm phase store converges >= 2x faster.
        assert (
            store["settling_periods"] * 2 <= cold["settling_periods"]
        ), name
        assert (
            store["lost_throughput"] < cold["lost_throughput"]
        ), name
        # The model prior must not regress the converged operating
        # point by more than the controller's own tolerance band.
        assert v["model"]["converged_throughput"] >= (
            1.0 - 4 * SENS
        ) * cold["converged_throughput"], name

    tv = payload[TIME_VARYING[0]]
    # 1-period snap-back when the recorded phase recurs.
    assert tv["store"]["settling_periods"] == 1
    assert (
        tv["store"]["settling_periods"] * 2
        <= tv["cold"]["settling_periods"]
    )
    assert tv["store"]["lost_throughput"] <= tv["cold"]["lost_throughput"]
