"""Figure 6 — optimizations that shorten the adaptation period.

Paper setup: a 500-operator pipeline with per-tuple costs of 10,000 /
100 / 1 FLOPs (skewed distribution), 1024 B payloads.  Four runtime
variants: (a) no optimizations, (b) learning from history, (c) history
+ satisfaction factor 0.6, (d) history + satisfaction factor 0.

Shape assertions:
- every optimization level shortens (or preserves) the settling time;
  the fully optimized variant is substantially faster than no-opt
  (paper: 1000 s -> ~400 s),
- converged throughput is not sacrificed (paper: "final throughput
  after adaptation is close across different runtime setups").
"""

from __future__ import annotations

from _bench_util import record, run_once

from repro.bench.figures import fig06_adaptation
from repro.bench.reporting import format_table
from repro.bench.timeline import render_timeline


def test_fig06_adaptation(benchmark):
    results = run_once(
        benchmark,
        lambda: fig06_adaptation(n_operators=500, duration_s=40_000.0),
    )

    rows = [
        [
            r.variant,
            r.settling_time_s,
            r.converged_throughput,
            r.final_threads,
            r.final_n_queues,
        ]
        for r in results
    ]
    timelines = "\n\n".join(
        render_timeline(r.trace, title=f"--- {r.variant} ---")
        for r in results
    )
    record("fig06_timelines", timelines)
    record(
        "fig06_adaptation",
        format_table(
            [
                "variant",
                "settling s",
                "converged T/s",
                "threads",
                "queues",
            ],
            rows,
            title=(
                "Figure 6 -- adaptation-period optimizations "
                "(500-op skewed pipeline, 1024B)"
            ),
        ),
    )

    by_name = {r.variant: r for r in results}
    no_opt = by_name["no-opt"]
    best_optimized = min(
        by_name["history+sf0.6"].settling_time_s,
        by_name["history+sf0"].settling_time_s,
    )
    # History alone helps (paper: ~20%).
    assert by_name["history"].settling_time_s <= no_opt.settling_time_s
    # Full optimizations cut the adaptation period substantially
    # (paper: ~60%).
    assert best_optimized < 0.6 * no_opt.settling_time_s
    # Converged throughput stays in the same range across variants.
    # Known reproduction deviation: the paper reports a negligible
    # loss from the satisfaction factor, while in our substrate the
    # skipped secondary adjustments during the initial climb can leave
    # the aggressive sf variants up to ~30-35% below the unoptimized
    # fixed point on large skewed pipelines (recorded in
    # EXPERIMENTS.md).
    throughputs = [r.converged_throughput for r in results]
    assert min(throughputs) > 0.6 * max(throughputs)
