"""§3.1.1 — robustness to the adaptation period and SENS choice.

The paper: "We use a period of 5 seconds ... We have also experimented
with the periods of 10s, 20s and 30s and have not observed significant
performance impact due to the different period values within this
range."  And on SENS: "A smaller SENS value favors detecting changes
while a larger SENS value favors stability. We choose the value of
0.05."

Shape assertions:
- converged throughput varies little across 5-30 s adaptation periods,
- the SENS sweep shows the documented trade-off: a large SENS
  under-explores (lower converged throughput), while the paper's 0.05
  stays near the best arm.
"""

from __future__ import annotations

from _bench_util import record, run_once

from repro.bench.ablations import ablate_sens
from repro.bench.figures import sec311_period_sweep
from repro.bench.reporting import format_table
from repro.graph import pipeline
from repro.perfmodel import xeon_176


def test_sec311_period_insensitivity(benchmark):
    outcomes = run_once(
        benchmark,
        lambda: sec311_period_sweep(periods_s=(5.0, 10.0, 20.0, 30.0)),
    )
    record(
        "sec311_period_sweep",
        format_table(
            ["adaptation period s", "converged T/s"],
            [[p, t] for p, t in sorted(outcomes.items())],
            title="Sec 3.1.1 -- adaptation period sweep",
        ),
    )
    values = list(outcomes.values())
    assert min(values) > 0.7 * max(values)


def test_sec311_sens_tradeoff(benchmark):
    graph = pipeline(100, payload_bytes=1024)
    machine = xeon_176().with_cores(88)
    results = run_once(
        benchmark,
        lambda: ablate_sens(
            graph, machine, sens_values=(0.01, 0.05, 0.20)
        ),
    )
    record(
        "sec311_sens_sweep",
        format_table(
            ["SENS", "converged T/s", "settling s", "oscillations"],
            [
                [
                    sens,
                    r.converged_throughput,
                    r.settling_time_s,
                    r.saso.stability_oscillations,
                ]
                for sens, r in sorted(results.items())
            ],
            title="Sec 3.1.1 -- sensitivity threshold sweep (3% noise)",
        ),
    )
    # A very large SENS under-explores relative to the paper's 0.05.
    assert (
        results[0.20].converged_throughput
        <= 1.05 * results[0.05].converged_throughput
    )
    # The paper's default lands within 2x of the most sensitive arm.
    assert (
        results[0.05].converged_throughput
        > 0.5 * results[0.01].converged_throughput
    )
