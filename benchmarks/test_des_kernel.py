"""DES kernel microbenchmark: the fast-path scenario, tracked per PR.

Times the scenario profiled in the fast-path work — an 8-stage
pipeline (2000 FLOPs/op, 128 B payloads) under ``QueuePlacement.full``
with 8 scheduler threads on the 8-core laptop profile, simulating
12 ms (2 ms warmup + 10 ms measured) — and asserts a conservative
kernel-event throughput floor so a dispatch or parking regression
fails CI loudly rather than silently doubling the suite's wall time.

Also emits ``benchmarks/results/BENCH_des.json``: events/s, wall
seconds per simulated second, the before/after numbers of the
fast-path rewrite, and a representative figure-sweep wall time (each
:class:`~repro.bench.harness.Comparison` now carries ``wall_s``).
"""

from __future__ import annotations

import time

from _bench_util import record, record_json, run_once

from repro.bench.figures import fig10_data_parallel
from repro.bench.reporting import throughput_rates
from repro.des.channels import ChannelConfig
from repro.des.engine import DesEngine
from repro.graph.topologies import pipeline
from repro.perfmodel.machine import laptop
from repro.runtime.queues import QueuePlacement

WARMUP_S = 0.002
MEASURE_S = 0.010
SIMULATED_S = WARMUP_S + MEASURE_S
CORES = 8

# Seed kernel (per-event closures, isinstance-chain dispatch, 2 µs
# idle busy-poll) on the same scenario and machine profile, min of 5
# runs on the reference box.  Kept as the "before" of the fast-path
# rewrite; the floor below is what CI enforces, since absolute wall
# time does not transfer between machines.
BASELINE = {
    "wall_s": 2.755,
    "events": 1_295_824,
    "events_per_s": 470_354.0,
    "wall_per_sim_s": 229.6,
    "sink_tuples_per_s": 1_264_100.0,
}

# Conservative: the reference box does ~400k events/s after the
# rewrite and did ~470k/s before it, so any machine that ever ran the
# seed suite comfortably clears this unless the kernel regresses.
MIN_EVENTS_PER_S = 100_000.0

# CI gate: the fast-path kernel must stay at least this many times
# faster than the seed kernel's reference wall time.  The reference
# box measures ~14x; 2.5x leaves headroom for slow CI machines while
# still failing loudly if batching or dispatch regresses the kernel
# back toward per-event closures.
WALL_SPEEDUP_FLOOR = 2.5

# Fast-forwarded benchmark: a long closed-loop window where the
# steady-rate extrapolation should do nearly all the work.  The
# reference box delivers ~27M sink tuples/s wall (~3.4M/s/core);
# the ISSUE target is >= 1M/s/core.
FF_MEASURE_S = 1.0
MIN_FF_SINK_TUPLES_PER_S_WALL_PER_CORE = 1_000_000.0


def _make_engine(channel=None):
    graph = pipeline(8, cost_flops=2000.0, payload_bytes=128)
    machine = laptop(cores=CORES)
    return DesEngine(
        graph,
        machine,
        QueuePlacement.full(graph),
        scheduler_threads=8,
        channel=channel,
    )


def _run_profiled_scenario():
    engine = _make_engine()
    t0 = time.perf_counter()
    result = engine.run(warmup_s=WARMUP_S, measure_s=MEASURE_S)
    wall = time.perf_counter() - t0
    return engine, result, wall


def _run_fastforward_scenario():
    engine = _make_engine(channel=ChannelConfig(fastforward=True))
    t0 = time.perf_counter()
    result = engine.run(warmup_s=WARMUP_S, measure_s=FF_MEASURE_S)
    wall = time.perf_counter() - t0
    return engine, result, wall


def test_des_kernel_fast_path(benchmark):
    engine, result, wall = run_once(benchmark, _run_profiled_scenario)
    events = engine.sim.events_processed
    events_per_s = events / wall
    wall_per_sim_s = wall / SIMULATED_S

    # A representative figure sweep, for the per-figure wall-time
    # trajectory (small grid; the full grids run under REPRO_FULL).
    sweep_t0 = time.perf_counter()
    sweep = fig10_data_parallel(widths=(10,), payloads=(128,))
    sweep_wall = time.perf_counter() - sweep_t0

    # Both clock normalizations, explicitly suffixed: *_sim is what
    # the modeled system achieves, *_wall is how fast the simulator
    # itself delivered those tuples (the number this file tracks).
    rates = throughput_rates(
        result.sink_tuples, MEASURE_S, wall, cores=CORES
    )
    current = {
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": round(events_per_s, 1),
        "wall_per_sim_s": round(wall_per_sim_s, 2),
        "sink_tuples_per_s": round(result.sink_tuples_per_s, 1),
        **rates,
    }
    record_json(
        "BENCH_des",
        {
            "scenario": (
                "pipeline(8 ops, 2000 FLOPs, 128 B) | placement=full | "
                "8 scheduler threads | laptop(8 cores) | 12 ms simulated"
            ),
            "baseline_seed_kernel": BASELINE,
            "current": current,
            "wall_speedup_vs_baseline": round(
                BASELINE["wall_s"] / wall, 2
            ),
            "wall_speedup_floor": WALL_SPEEDUP_FLOOR,
            "figure_sweeps": {
                "fig10_data_parallel(widths=(10,), payloads=(128,))": {
                    "wall_s": round(sweep_wall, 4),
                    "per_comparison_wall_s": [
                        round(c.wall_s, 4) for c in sweep
                    ],
                }
            },
        },
    )
    record(
        "des_kernel_fast_path",
        "\n".join(
            [
                "DES kernel fast path -- profiled scenario",
                f"  wall            {wall:8.3f} s "
                f"(seed kernel: {BASELINE['wall_s']:.3f} s, "
                f"{BASELINE['wall_s'] / wall:.1f}x)",
                f"  kernel events   {events:10,d} "
                f"({events_per_s:,.0f} /s)",
                f"  wall per sim-s  {wall_per_sim_s:8.1f} s",
                f"  sink throughput {result.sink_tuples_per_s:12,.0f} /s",
            ]
        ),
    )

    assert not result.deadlocked
    assert events_per_s >= MIN_EVENTS_PER_S, (
        f"kernel regressed: {events_per_s:,.0f} events/s is below the "
        f"{MIN_EVENTS_PER_S:,.0f}/s floor"
    )
    # CI perf gate: the fast path must hold its speedup over the seed
    # kernel's reference wall time.  perf-smoke runs this test, so a
    # regression below the floor fails the workflow.
    speedup = BASELINE["wall_s"] / wall
    assert speedup >= WALL_SPEEDUP_FLOOR, (
        f"wall speedup vs seed kernel dropped to {speedup:.2f}x, below "
        f"the pinned {WALL_SPEEDUP_FLOOR}x floor"
    )
    # The rewrite must not change what the DES *measures*: sink
    # throughput stays within a band of the seed kernel's measurement.
    assert (
        0.8 * BASELINE["sink_tuples_per_s"]
        <= result.sink_tuples_per_s
        <= 1.25 * BASELINE["sink_tuples_per_s"]
    )


def test_des_kernel_batched_fastforward(benchmark):
    """Batched channels + analytic fast-forward on a 1 s window.

    Same graph and machine as the fast-path benchmark, but with
    ``ChannelConfig(fastforward=True)`` and a 100x longer measured
    window: the steady-rate extrapolator should probe briefly, then
    jump the rest of the window analytically.  Asserts the headline
    ISSUE target — at least 1M sink tuples per wall-second per core —
    and that the measurement it extrapolates agrees with the
    event-by-event benchmark's sink rate.
    """
    engine, result, wall = run_once(
        benchmark, _run_fastforward_scenario
    )
    rates = throughput_rates(
        result.sink_tuples, FF_MEASURE_S, wall, cores=CORES
    )
    saved = engine.sim.events_fastforwarded
    record_json(
        "BENCH_des",
        {
            "batched_fastforward": {
                "scenario": (
                    "pipeline(8 ops, 2000 FLOPs, 128 B) | "
                    "placement=full | 8 scheduler threads | "
                    "laptop(8 cores) | 1 s measured | "
                    "channel(batch=8, fastforward)"
                ),
                "wall_s": round(wall, 4),
                "events_executed": engine.sim.events_processed,
                "events_fastforwarded": saved,
                "ff_jumps": engine._ff.jumps if engine._ff else 0,
                **rates,
            }
        },
        merge=True,
    )
    record(
        "des_kernel_batched_fastforward",
        "\n".join(
            [
                "DES kernel batched fast-forward -- 1 s window",
                f"  wall              {wall:8.3f} s",
                f"  sink tuples       {result.sink_tuples:14,.0f}",
                f"  sink/s (sim)      "
                f"{rates['sink_tuples_per_s_sim']:14,.0f}",
                f"  sink/s (wall)     "
                f"{rates['sink_tuples_per_s_wall']:14,.0f}",
                f"  sink/s/core (wall)"
                f"{rates['sink_tuples_per_s_wall_per_core']:14,.0f}",
                f"  events saved      {saved:14,d}",
            ]
        ),
    )

    assert not result.deadlocked
    # The extrapolator actually fired: nearly all of the window's
    # events were fast-forwarded rather than executed.
    assert saved > 0, "fast-forward never engaged on a 1 s window"
    assert (
        rates["sink_tuples_per_s_wall_per_core"]
        >= MIN_FF_SINK_TUPLES_PER_S_WALL_PER_CORE
    ), (
        f"{rates['sink_tuples_per_s_wall_per_core']:,.0f} sink "
        f"tuples/s/core wall is below the 1M/s/core target"
    )
    # The extrapolated measurement must agree with the event-by-event
    # kernel's: same scenario, same sink rate (in simulated time) to
    # within the steady-state probe tolerance.
    assert (
        0.9 * BASELINE["sink_tuples_per_s"]
        <= rates["sink_tuples_per_s_sim"]
        <= 1.15 * BASELINE["sink_tuples_per_s"]
    )
