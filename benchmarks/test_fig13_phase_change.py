"""Figure 13 — adaptation to a workload phase change.

Paper setup: a 100-operator pipeline whose heavy-weight operator ratio
jumps from 10 % to 90 % twenty minutes into the run.  The paper
observes: re-adaptation finds a new configuration within ~500 s,
raising the thread count (32 -> 88) and the number of dynamic operators
(42 -> 86).

Shape assertions:
- configuration changes resume after the workload shift and finish in
  bounded time,
- both the thread count and the dynamic-operator count increase in
  response to the heavier workload,
- throughput stabilizes again after re-adaptation.
"""

from __future__ import annotations

from _bench_util import record, run_once

from repro.bench.figures import fig13_phase_change
from repro.bench.reporting import format_table


def test_fig13_phase_change(benchmark):
    result = run_once(
        benchmark,
        lambda: fig13_phase_change(
            n_operators=100,
            change_time_s=1200.0,
            total_duration_s=4000.0,
        ),
    )
    record(
        "fig13_phase_change",
        format_table(
            ["metric", "before", "after"],
            [
                ["threads", result.threads_before, result.threads_after],
                ["queues", result.queues_before, result.queues_after],
                [
                    "throughput T/s",
                    result.throughput_before,
                    result.throughput_after,
                ],
                [
                    "re-settling time s",
                    "-",
                    result.re_settling_time_s,
                ],
            ],
            title="Figure 13 -- workload phase change (heavy 10% -> 90%)",
        ),
    )

    # The system re-adapts (changes happen after the shift) ...
    assert result.re_settling_time_s > 0.0
    # ... within bounded time (paper: ~500 s; allow 2x).
    assert result.re_settling_time_s < 1000.0
    # More heavy operators -> more threads and more dynamic operators.
    assert result.threads_after > result.threads_before
    assert result.queues_after > result.queues_before
    # The run ends settled: no changes in the last 20% of the run.
    last_change = result.trace.last_change_time()
    assert last_change < 0.9 * result.trace.duration_s
