"""Extension experiment (beyond the paper): the latency side.

The paper optimizes throughput; streaming SLAs also care about latency.
Using the queueing-latency estimator this bench asks: does the
configuration multi-level elasticity converges to also behave well on
latency?

Shape assertions:
- at light load, the multi-level configuration's latency stays within a
  small factor of pure manual threading (few queues -> few extra hops),
  while full dynamic pays a hop/copy penalty on every operator;
- at loads beyond manual's capacity, the multi-level configuration
  still delivers finite latency where manual saturates outright.
"""

from __future__ import annotations

from _bench_util import record, run_once

from repro.bench.harness import run_multi_level
from repro.bench.reporting import format_table
from repro.graph import pipeline
from repro.perfmodel import PerformanceModel, xeon_176
from repro.perfmodel.latency import estimate_latency
from repro.runtime import QueuePlacement, RuntimeConfig


def _experiment():
    graph = pipeline(100, cost_flops=1000.0, payload_bytes=1024)
    machine = xeon_176().with_cores(88)
    model = PerformanceModel(graph, machine)

    multi = run_multi_level(
        graph, machine, RuntimeConfig(cores=88, seed=0)
    )
    # Reconstruct the converged placement from the final trace state is
    # not exposed; instead re-run a PE to convergence and query it.
    from repro.runtime import ProcessingElement
    from repro.runtime.executor import AdaptationExecutor

    pe = ProcessingElement(
        graph, machine, RuntimeConfig(cores=88, seed=0)
    )
    AdaptationExecutor(pe).run(20_000, stop_after_stable_periods=24)
    multi_placement = pe.placement
    multi_threads = pe.scheduler_threads

    manual = QueuePlacement.empty()
    full = QueuePlacement.full(graph)

    manual_capacity = model.estimate(manual, 0).throughput

    rows = []
    results = {}
    for label, placement, threads in [
        ("manual", manual, 0),
        ("multi-level", multi_placement, multi_threads),
        ("full dynamic", full, 87),
    ]:
        capacity = model.estimate(placement, threads).throughput
        light = estimate_latency(model, placement, threads, 0.2)
        # Absolute load: 1.5x manual capacity.
        load = 1.5 * manual_capacity
        at_load = estimate_latency(
            model, placement, threads, load / capacity
        )
        results[label] = (light, at_load, capacity)
        rows.append(
            [
                label,
                capacity,
                light.latency_ms,
                (
                    "saturated"
                    if at_load.saturated
                    else f"{at_load.latency_ms:.3f}"
                ),
            ]
        )
    table = format_table(
        [
            "configuration",
            "capacity T/s",
            "latency ms @20% own load",
            "latency ms @1.5x manual capacity",
        ],
        rows,
        title="Extension -- latency behaviour of converged configurations",
    )
    return results, table


def test_ext_latency(benchmark):
    results, table = run_once(benchmark, _experiment)
    record("ext_latency", table)

    manual_light, manual_loaded, _c = results["manual"]
    multi_light, multi_loaded, _c2 = results["multi-level"]
    full_light, _full_loaded, _c3 = results["full dynamic"]

    # Light load: multi-level stays within a small factor of manual;
    # full dynamic pays per-operator hop costs.
    assert multi_light.latency_s < 5.0 * manual_light.latency_s
    assert full_light.latency_s > multi_light.latency_s
    # Beyond manual capacity: manual saturates, multi-level does not.
    assert manual_loaded.saturated
    assert not multi_loaded.saturated
    assert multi_loaded.latency_s < float("inf")
