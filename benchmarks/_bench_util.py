"""Shared helpers for the benchmark suite.

Every benchmark target runs its experiment exactly once under
pytest-benchmark timing (``benchmark.pedantic(rounds=1)``), prints the
paper-style table and appends it to ``benchmarks/results/<name>.txt``
so EXPERIMENTS.md can reference the measured numbers.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Callable, Dict, TypeVar

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
# Repo root, where the BENCH_* perf-trajectory artifacts are mirrored
# for quick inspection.  benchmarks/results/ is the canonical copy
# (CI uploads from there); the root copy is always script-written,
# never hand-edited, so the two cannot drift.
REPO_ROOT = pathlib.Path(__file__).parent.parent

T = TypeVar("T")


def full_scale() -> bool:
    """True when REPRO_FULL=1: run the paper-complete parameter grids.

    The default grids are scaled down so the whole suite finishes in
    about a minute; the full grids add the intermediate payload points
    and operator counts the paper sweeps (several minutes).
    """
    return os.environ.get("REPRO_FULL", "") == "1"


def grid(small: T, full: T) -> T:
    """Pick the small or full parameter grid based on REPRO_FULL."""
    return full if full_scale() else small


def run_once(benchmark, fn: Callable[[], T]) -> T:
    """Execute ``fn`` once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def record(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")


def record_json(
    name: str, payload: Dict[str, Any], merge: bool = False
) -> pathlib.Path:
    """Persist a machine-readable result as benchmarks/results/<name>.json.

    Used for artifacts tooling consumes across PRs (e.g.
    ``BENCH_des.json``, the DES performance trajectory).  With
    ``merge=True`` the payload's top-level keys are merged into the
    existing file instead of replacing it, so several benchmarks can
    contribute sections to one artifact regardless of run order.

    ``BENCH_*`` artifacts are additionally mirrored to the repo root;
    the ``benchmarks/results/`` copy stays canonical.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    if merge and path.exists():
        existing = json.loads(path.read_text())
        existing.update(payload)
        payload = existing
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    path.write_text(text)
    print(f"\nwrote {path}")
    if name.startswith("BENCH"):
        (REPO_ROOT / f"{name}.json").write_text(text)
    return path
