"""Extension experiment (beyond the paper): multi-PE jobs.

§2 of the paper: "all PEs in a job independently use the proposed work
to maximize their performance."  This bench runs a three-stage job —
each PE on its own (simulated) host with its own coordinator, coupled
only through inter-PE backpressure — and checks the joint outcome.

Shape assertions:
- the job reaches a fixed point in a small number of adaptation rounds;
- exactly one stage is the bottleneck and the downstream stages are
  rate-matched to it (no stage wastes resources outrunning its input);
- the non-bottleneck stages settle with spare capacity headroom
  (they would go faster if fed faster).
"""

from __future__ import annotations

import numpy as np
from _bench_util import record, run_once

from repro.bench.reporting import format_table
from repro.graph import assign_costs, pipeline, skewed
from repro.perfmodel import laptop, xeon_176
from repro.runtime import RuntimeConfig
from repro.runtime.job import Job


def _experiment():
    ingest = pipeline(
        20, cost_flops=500.0, payload_bytes=512, name="pe-ingest"
    )
    analytics = assign_costs(
        pipeline(200, payload_bytes=512, name="pe-analytics"),
        skewed(),
        rng=np.random.default_rng(0),
    )
    reporting = pipeline(
        30, cost_flops=1000.0, payload_bytes=256, name="pe-reporting"
    )
    job = Job(
        [
            (ingest, laptop(4)),
            (analytics, xeon_176().with_cores(64)),
            (reporting, laptop(8)),
        ],
        config=RuntimeConfig(seed=7),
    )
    return job.run(duration_s_per_stage=15_000.0)


def test_ext_multi_pe(benchmark):
    result = run_once(benchmark, _experiment)
    record(
        "ext_multi_pe",
        format_table(
            ["stage", "throughput T/s", "input cap T/s", "threads", "queues"],
            [
                [
                    s.name,
                    s.throughput,
                    s.input_cap if s.input_cap else "-",
                    s.threads,
                    s.n_queues,
                ]
                for s in result.stages
            ],
            title=(
                "Extension -- 3-PE job, independent per-PE elasticity "
                f"(converged in {result.rounds} rounds, bottleneck "
                f"{result.bottleneck_stage})"
            ),
        ),
    )

    assert result.rounds <= 3
    stages = {s.name: s for s in result.stages}
    bottleneck = stages[result.bottleneck_stage]
    # Downstream stages are rate-matched to the bottleneck.
    for s in result.stages:
        assert s.throughput >= 0.9 * min(
            bottleneck.throughput, s.throughput
        )
    assert (
        result.job_throughput
        <= min(s.throughput for s in result.stages) * 1.05
    )
    # Every stage converged to a valid configuration.
    for s in result.stages:
        assert s.threads >= 1
