"""Figure 12 — bushy graphs: varying cores and per-tuple cost.

Paper setup: 82 functional operators in a bushy (split/merge) topology,
available cores 16..88, per-operator cost 1..10,000 FLOPs (balanced),
payload 1024 B / 16384 B.

Shape assertions:
- multi-level adapts to the available cores and keeps a benefit at
  every core count,
- "when the tuple cost is low, the benefits of multi-level elasticity
  are high" — the multi/dynamic ratio is largest for the cheapest
  operators (queue costs dominate small workloads),
- multi-level uses no more threads than the core budget.
"""

from __future__ import annotations

from _bench_util import grid, record, run_once

from repro.bench.figures import fig12_bushy
from repro.bench.reporting import comparison_table


def test_fig12_bushy(benchmark):
    comparisons = run_once(
        benchmark,
        lambda: fig12_bushy(
            cores=grid((16, 88), (16, 32, 64, 88)),
            costs=(1.0, 100.0, 10_000.0),
        ),
    )
    record(
        "fig12_bushy",
        comparison_table(
            comparisons, title="Figure 12 -- bushy graphs (82 operators)"
        ),
    )

    def cell(cores, cost):
        key = f"bushy82 {cores}c {cost:g}F"
        return next(c for c in comparisons if c.workload == key)

    for cores in (16, 88):
        # Low-cost operators benefit most from threading-model choice.
        assert (
            cell(cores, 1.0).multi_over_dynamic
            >= cell(cores, 10_000.0).multi_over_dynamic
        )
        # Multi-level never loses to manual.
        for cost in (1.0, 100.0, 10_000.0):
            c = cell(cores, cost)
            assert c.multi_level_speedup >= 0.95, c.workload
            assert c.multi_level.threads <= cores
    # Heavy operators profit from parallelism on more cores.
    assert (
        cell(88, 10_000.0).multi_level.throughput
        > cell(16, 10_000.0).multi_level.throughput
    )
