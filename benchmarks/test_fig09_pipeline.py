"""Figure 9 — pipeline graphs: speedups over manual threading.

Paper setup: pipelines of 100 / 500 / 1000 operators, payloads 128 B to
16384 B, balanced (100 FLOPs) and skewed cost distributions, on the
Xeon and POWER8 systems.  Reported per cell: manual, dynamic (thread
count elasticity) and multi-level throughput, plus the ratio of
operators under the dynamic threading model.

Shape assertions (per paper §4.1):
- multi-level's advantage over dynamic-only grows with the payload
  (up to ~22x at 16384 B in the paper),
- the dynamic-operator ratio falls as the payload grows,
- at 16384 B dynamic-only performs *worse* than manual while
  multi-level does not,
- gains grow with the operator count,
- trends hold on both architectures and both cost distributions.
"""

from __future__ import annotations

import pytest
from _bench_util import grid, record, run_once

from repro.bench.figures import fig09_pipeline
from repro.bench.reporting import comparison_table
from repro.graph import balanced, skewed

CASES = [
    ("xeon", "balanced"),
    ("xeon", "skewed"),
    ("power8", "balanced"),
    ("power8", "skewed"),
]


@pytest.mark.parametrize("machine_name,dist_name", CASES)
def test_fig09_pipeline(benchmark, machine_name, dist_name):
    dist = balanced(100.0) if dist_name == "balanced" else skewed()
    comparisons = run_once(
        benchmark,
        lambda: fig09_pipeline(
            machine_name=machine_name,
            distribution=dist,
            operator_counts=(100, 500, 1000),
            payloads=grid(
                (128, 1024, 16384), (128, 512, 1024, 4096, 16384)
            ),
        ),
    )
    record(
        f"fig09_pipeline_{machine_name}_{dist_name}",
        comparison_table(
            comparisons,
            title=f"Figure 9 -- pipelines on {machine_name}, {dist_name}",
        ),
    )

    def cell(n_ops, payload):
        key = f"pipe({n_ops}) {payload}B"
        return next(c for c in comparisons if c.workload == key)

    # Multi-level's edge over dynamic grows with payload.
    for n_ops in (100, 500, 1000):
        assert (
            cell(n_ops, 16384).multi_over_dynamic
            > cell(n_ops, 128).multi_over_dynamic
        )
    # Dynamic ratio falls with payload.
    for n_ops in (100, 1000):
        assert (
            cell(n_ops, 16384).multi_level.dynamic_ratio
            < cell(n_ops, 128).multi_level.dynamic_ratio
        )
    # At 16 KiB with *balanced* costs, the payload copies dominate and
    # dynamic-only loses to manual (the paper's Fig. 9(a) claim); with
    # skewed costs the heavy analytics amortize the copies, so the
    # claim is balanced-only.  Multi-level never falls far below
    # manual in either case.
    for n_ops in (100, 500, 1000):
        if dist_name == "balanced":
            assert cell(n_ops, 16384).dynamic_speedup < 1.0
        assert cell(n_ops, 16384).multi_level_speedup > 0.9
    # Gains grow with operator count at mid payloads.
    assert (
        cell(1000, 1024).multi_level_speedup
        > cell(100, 1024).multi_level_speedup
    )
    # Multi-level is never dramatically below dynamic-only (SENS-bound
    # hill climbing can end within ~1/3 of the exhaustive-queue
    # configuration on small payloads where full dynamic is optimal).
    for c in comparisons:
        assert c.multi_over_dynamic > 0.65
    # Resource utilization (paper: "multi-level elasticity consistently
    # improves resource utilization by using fewer threads", e.g. 88 ->
    # 46 at similar throughput).  The claim applies where the two
    # schemes deliver *comparable* throughput: there multi-level must
    # not hold a meaningfully larger thread pool.  (Cells where
    # multi-level is several times faster legitimately use more
    # threads -- they are buying real throughput with them.)
    for c in comparisons:
        if 0.9 <= c.multi_over_dynamic <= 1.3:
            assert (
                c.multi_level.threads <= 1.1 * c.dynamic.threads
            ), c.workload
