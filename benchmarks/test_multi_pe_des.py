"""Multi-PE job executor benchmark: replica sweep into a locked sink.

The data-parallel scaling claim of the job layer, measured on the
tuple-level DES: a heavy worker PE replicated 1..8 ways behind a
shuffle channel, feeding a lock-serialized sink PE.  Throughput must
grow monotonically with the replica count until the sink channel
saturates, then plateau -- the cross-PE analogue of the paper's
Fig. 8(b) locked-merge ceiling.

Emits the ``multi_pe`` section of ``benchmarks/results/BENCH_des.json``
(CI perf-smoke runs this file, so the sweep is tracked per PR).
"""

from __future__ import annotations

import time

from _bench_util import record, record_json, run_once

from repro.bench import cache
from repro.graph.builder import GraphBuilder
from repro.job.executor import JobAdaptationRunner
from repro.job.graph import build_job_graph
from repro.perfmodel.machine import laptop
from repro.runtime.config import RuntimeConfig
from repro.scenarios.schema import (
    PartitionSpec,
    PartitionStrategy,
    PeSpec,
)

REPLICAS = (1, 2, 4, 6, 8)
CORES = 4
SEED = 21
MAX_PERIODS = 10


def _run_sweep():
    """Converged job throughput per worker replica count."""
    sweep = {}
    for reps in REPLICAS:
        cache.clear()
        b = GraphBuilder()
        src = b.add_source("src", cost_flops=50.0)
        work = b.add_operator("work", cost_flops=6000.0)
        snk = b.add_sink("snk", cost_flops=1500.0)
        b.chain(src, work, snk)
        pes = (
            PeSpec(name="ingest", operators=("src",)),
            PeSpec(name="worker", operators=("work",), replicas=reps),
            PeSpec(name="sinkpe", operators=("snk",)),
        )
        job = build_job_graph(
            b.build(),
            pes,
            PartitionSpec(strategy=PartitionStrategy.SHUFFLE),
        )
        runner = JobAdaptationRunner(
            job,
            laptop(CORES),
            RuntimeConfig(seed=SEED),
            warmup_s=0.001,
            measure_s=0.004,
        )
        result = runner.run(
            max_periods=MAX_PERIODS, stop_after_stable_periods=4
        )
        sweep[reps] = result.converged_throughput
    return sweep


def test_multi_pe_replica_sweep(benchmark):
    """1..8 worker replicas: monotone throughput, then a sink ceiling."""
    t0 = time.perf_counter()
    sweep = run_once(benchmark, _run_sweep)
    wall = time.perf_counter() - t0

    record_json(
        "BENCH_des",
        {
            "multi_pe": {
                "scenario": (
                    "src(50) -> work(6000) x R -> snk(1500, locked) | "
                    "shuffle channels | laptop(4 cores) | "
                    f"seed {SEED}"
                ),
                "replica_sweep_tuples_per_s": {
                    str(r): round(t, 1) for r, t in sweep.items()
                },
                "wall_s": round(wall, 4),
            }
        },
        merge=True,
    )
    lines = ["Multi-PE replica sweep (shuffle into locked sink)"]
    for r, t in sweep.items():
        lines.append(f"  R={r}  {t:12,.0f} tuples/s")
    record("multi_pe_replica_sweep", "\n".join(lines))

    rates = [sweep[r] for r in REPLICAS]
    # Early scaling is real: doubling the workers from 1 to 2 must
    # pay off close to linearly.
    assert sweep[2] > 1.5 * sweep[1]
    # Monotone until the ceiling: no replica step may lose throughput
    # beyond measurement jitter.
    for lo, hi in zip(rates, rates[1:]):
        assert hi >= 0.97 * lo, (
            f"throughput regressed along the sweep: {rates}"
        )
    # The sink channel caps the job well below linear scaling: the
    # last doubling (4 -> 8 replicas) must yield almost nothing.
    assert sweep[8] < 1.15 * sweep[4], (
        f"expected a sink-contention plateau by R=4, got {sweep}"
    )
    assert sweep[8] < 0.6 * 8 * sweep[1]
