"""Multi-PE job executor benchmark: replica sweep into a locked sink.

The data-parallel scaling claim of the job layer, measured on the
tuple-level DES: a heavy worker PE replicated 1..8 ways behind a
shuffle channel, feeding a lock-serialized sink PE.  Throughput must
grow monotonically with the replica count until the sink channel
saturates, then plateau -- the cross-PE analogue of the paper's
Fig. 8(b) locked-merge ceiling.

Besides the modeled curve, this file tracks *simulator* performance
on the job path: every replica point records its wall time and the
``sink_tuples_per_s_wall`` / ``_wall_per_core`` rates (see
``bench.reporting.throughput_rates``), and the whole sweep is held to
``JOB_WALL_SPEEDUP_FLOOR`` against the pinned PR-8 sequential
baseline (the same convention as ``test_des_kernel.py``).  A live run
with the vectorized locked-region path disabled is also taken, both
to isolate that path's share of the win and to pin the modeled curve
against per-tuple lock execution.  CI perf-smoke runs this file with
``REPRO_JOB_WORKERS=2``, so the worker pool path is exercised (and
gated) per PR.

Emits the ``multi_pe`` section of ``benchmarks/results/BENCH_des.json``
(CI perf-smoke runs this file, so the sweep is tracked per PR).
"""

from __future__ import annotations

import time

from _bench_util import record, record_json, run_once

from repro.bench import cache
from repro.bench.reporting import throughput_rates
from repro.des import engine as des_engine
from repro.graph.builder import GraphBuilder
from repro.job.executor import JobAdaptationRunner
from repro.job.graph import build_job_graph
from repro.perfmodel.machine import laptop
from repro.runtime.config import RuntimeConfig
from repro.runtime.pool import job_workers
from repro.scenarios.schema import (
    PartitionSpec,
    PartitionStrategy,
    PeSpec,
)

REPLICAS = (1, 2, 4, 6, 8)
CORES = 4
SEED = 21
MAX_PERIODS = 10
MEASURE_S = 0.004

# PR-8 executor (per-tuple locked regions, burst-ineligible open-loop
# sources, jobs=1) on this exact sweep, profiled on the reference box.
# Kept as the "before" of the vectorized locked path + busy-source
# burst lookahead; the floor below is what CI enforces, since
# absolute wall times vary across boxes.
BASELINE = {
    "wall_s": 18.13,
    "replica_sweep_tuples_per_s": {
        "1": 640625.0,
        "2": 1257000.0,
        "4": 2274625.0,
        "6": 2286875.0,
        "8": 2286875.0,
    },
}

# CI perf gate, the job-path analogue of test_des_kernel's
# WALL_SPEEDUP_FLOOR: the vectorized locked-region path and the
# open-loop burst lookahead (plus the worker pool, when
# REPRO_JOB_WORKERS grants one) must keep the sweep at least this
# many times faster than the PR-8 executor's reference wall time.
# The reference box measures ~7x; 3x leaves headroom for slow CI
# machines while still failing loudly if the job path regresses back
# toward per-tuple execution.
JOB_WALL_SPEEDUP_FLOOR = 3.0


def _build_job(reps):
    b = GraphBuilder()
    src = b.add_source("src", cost_flops=50.0)
    work = b.add_operator("work", cost_flops=6000.0)
    snk = b.add_sink("snk", cost_flops=1500.0)
    b.chain(src, work, snk)
    pes = (
        PeSpec(name="ingest", operators=("src",)),
        PeSpec(name="worker", operators=("work",), replicas=reps),
        PeSpec(name="sinkpe", operators=("snk",)),
    )
    return build_job_graph(
        b.build(),
        pes,
        PartitionSpec(strategy=PartitionStrategy.SHUFFLE),
    )


def _run_sweep(jobs=1):
    """Converged job throughput and wall cost per replica count."""
    sweep = {}
    for reps in REPLICAS:
        cache.clear()
        runner = JobAdaptationRunner(
            _build_job(reps),
            laptop(CORES),
            RuntimeConfig(seed=SEED),
            warmup_s=0.001,
            measure_s=MEASURE_S,
            jobs=jobs,
        )
        t0 = time.perf_counter()
        result = runner.run(
            max_periods=MAX_PERIODS, stop_after_stable_periods=4
        )
        wall = time.perf_counter() - t0
        obs = result.trace.observations
        sweep[reps] = {
            "converged": result.converged_throughput,
            "wall_s": wall,
            # Simulated sink tuples over the measured windows: the
            # numerator of the wall-clock rates below.
            "sink_tuples": sum(o.throughput for o in obs) * MEASURE_S,
            "sim_s": len(obs) * MEASURE_S,
        }
    return sweep


def _run_locked_off_sweep():
    """The sweep with the vectorized locked path disabled: isolates
    that path's share of the speedup and provides the per-tuple
    reference curve the modeled throughputs are pinned against."""
    prev = des_engine.LOCKED_FAST
    des_engine.LOCKED_FAST = False
    try:
        return _run_sweep(jobs=1)
    finally:
        des_engine.LOCKED_FAST = prev


def test_multi_pe_replica_sweep(benchmark):
    """1..8 worker replicas: monotone throughput, then a sink ceiling;
    the sweep's wall time holds the job-path speedup floor."""
    jobs = job_workers()  # REPRO_JOB_WORKERS; CI perf-smoke passes 2
    locked_off = _run_locked_off_sweep()
    sweep = run_once(benchmark, lambda: _run_sweep(jobs=jobs))

    wall = sum(p["wall_s"] for p in sweep.values())
    locked_off_wall = sum(p["wall_s"] for p in locked_off.values())
    speedup = BASELINE["wall_s"] / wall
    points = {
        str(r): {
            "wall_s": round(p["wall_s"], 4),
            **throughput_rates(
                p["sink_tuples"],
                p["sim_s"],
                p["wall_s"],
                cores=max(1, jobs),
            ),
        }
        for r, p in sweep.items()
    }
    record_json(
        "BENCH_des",
        {
            "multi_pe": {
                "scenario": (
                    "src(50) -> work(6000) x R -> snk(1500, locked) | "
                    "shuffle channels | laptop(4 cores) | "
                    f"seed {SEED}"
                ),
                "jobs": jobs,
                "replica_sweep_tuples_per_s": {
                    str(r): round(p["converged"], 1)
                    for r, p in sweep.items()
                },
                "points": points,
                "wall_s": round(wall, 4),
                "baseline_pr8_sequential": BASELINE,
                "locked_fast_off": {
                    "jobs": 1,
                    "wall_s": round(locked_off_wall, 4),
                    "wall_speedup_from_locked_path": round(
                        locked_off_wall / wall, 2
                    ),
                    "replica_sweep_tuples_per_s": {
                        str(r): round(p["converged"], 1)
                        for r, p in locked_off.items()
                    },
                },
                "wall_speedup_vs_baseline": round(speedup, 2),
                "job_wall_speedup_floor": JOB_WALL_SPEEDUP_FLOOR,
            }
        },
        merge=True,
    )
    lines = [
        "Multi-PE replica sweep (shuffle into locked sink)",
        f"  jobs={jobs}  wall {wall:6.2f} s "
        f"(PR-8 executor: {BASELINE['wall_s']:.2f} s, {speedup:.1f}x; "
        f"locked path off: {locked_off_wall:.2f} s)",
    ]
    for r, p in sweep.items():
        lines.append(
            f"  R={r}  {p['converged']:12,.0f} tuples/s   "
            f"wall {p['wall_s']:6.3f} s"
        )
    record("multi_pe_replica_sweep", "\n".join(lines))

    conv = {r: p["converged"] for r, p in sweep.items()}
    rates = [conv[r] for r in REPLICAS]
    # Early scaling is real: doubling the workers from 1 to 2 must
    # pay off close to linearly.
    assert conv[2] > 1.5 * conv[1]
    # Monotone until the ceiling: no replica step may lose throughput
    # beyond measurement jitter.
    for lo, hi in zip(rates, rates[1:]):
        assert hi >= 0.97 * lo, (
            f"throughput regressed along the sweep: {rates}"
        )
    # The sink channel caps the job well below linear scaling: the
    # last doubling (4 -> 8 replicas) must yield almost nothing.
    assert conv[8] < 1.15 * conv[4], (
        f"expected a sink-contention plateau by R=4, got {conv}"
    )
    assert conv[8] < 0.6 * 8 * conv[1]
    # The vectorized path is an optimization, not a model change: the
    # modeled curve must agree with per-tuple lock execution (and with
    # the pinned PR-8 curve) to within the granularity band.
    for r in REPLICAS:
        for label, base in (
            ("locked-fast", locked_off[r]["converged"]),
            ("PR-8", BASELINE["replica_sweep_tuples_per_s"][str(r)]),
        ):
            assert 0.9 * base <= conv[r] <= 1.1 * base, (
                f"{label} drift at R={r}: {conv[r]:,.0f} vs "
                f"baseline {base:,.0f}"
            )
    # CI perf gate: the job path must hold its speedup over the PR-8
    # executor's reference wall time (see the floor's comment).
    assert speedup >= JOB_WALL_SPEEDUP_FLOOR, (
        f"job-path wall speedup dropped to {speedup:.2f}x, below the "
        f"{JOB_WALL_SPEEDUP_FLOOR}x floor (wall {wall:.2f}s vs "
        f"reference {BASELINE['wall_s']:.2f}s)"
    )
