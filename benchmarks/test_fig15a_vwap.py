"""Figure 15(a) — the VWAP mini-application (52 operators).

Paper setup: VWAP bargain detection on 4, 16 and 88 cores; four
executions: manual, hand-optimized (9 developer-inserted threaded
ports), thread count elasticity and multi-level elasticity.

Shape assertions (paper §4.2):
- both elastic schemes clearly beat manual threading,
- the elastic schemes beat the hand-optimized configuration (paper: at
  least two-fold) while using fewer threads than its 9 at low core
  counts,
- multi-level's extra benefit over dynamic-only is largest when
  resources are scarce (paper: +15 % at 4 cores, marginal at 16,
  +6 % at 88).
"""

from __future__ import annotations

from _bench_util import record, run_once

from repro.bench.figures import fig15a_vwap
from repro.bench.reporting import app_table


def test_fig15a_vwap(benchmark):
    comparisons = run_once(
        benchmark, lambda: fig15a_vwap(cores=(4, 16, 88))
    )
    record(
        "fig15a_vwap",
        app_table(comparisons, title="Figure 15(a) -- VWAP (52 operators)"),
    )

    by_cores = {
        int(c.workload.split()[1].rstrip("c")): c for c in comparisons
    }
    for cores, c in by_cores.items():
        assert c.hand_optimized is not None
        # Elastic schemes beat manual on >= 16 cores; on 4 cores
        # multi-level still finds a win.
        if cores >= 16:
            assert c.dynamic_speedup > 2.0
        assert c.multi_level_speedup > 1.0
    # Elastic beats hand-optimized at every core count (paper: >= 2x).
    for c in by_cores.values():
        assert (
            c.multi_level.throughput > 1.5 * c.hand_optimized.throughput
        )
    # Multi-level's edge over dynamic is largest at 4 cores.
    assert (
        by_cores[4].multi_over_dynamic
        > by_cores[88].multi_over_dynamic
    )
    # Fewer threads than the 9 hand-inserted ones at low core counts.
    assert by_cores[4].multi_level.threads < 9
