"""Ablations of the paper's design choices (§3.2, DESIGN.md §5).

- adjustment direction: minimum-parallelism start (paper) vs fully
  dynamic start,
- iterative refinement vs a one-shot combination of the components,
- logarithmic group binning (O2) vs per-operator search.
"""

from __future__ import annotations

import numpy as np
from _bench_util import record, run_once

from repro.bench.ablations import (
    ablate_binning,
    ablate_coordination,
    ablate_primary_order,
    ablate_start_direction,
)
from repro.bench.reporting import format_table
from repro.graph import assign_costs, pipeline, skewed
from repro.perfmodel import xeon_176

MACHINE = xeon_176().with_cores(88)


def _graph(n_ops=200, seed=0):
    return assign_costs(
        pipeline(n_ops, payload_bytes=1024),
        skewed(),
        rng=np.random.default_rng(seed),
    )


def _table(name, results, title):
    record(
        name,
        format_table(
            ["arm", "converged T/s", "settling s", "threads", "queues"],
            [
                [
                    r.arm,
                    r.converged_throughput,
                    r.settling_time_s,
                    r.final_threads,
                    r.final_n_queues,
                ]
                for r in results
            ],
            title=title,
        ),
    )


def test_ablation_start_direction(benchmark):
    results = run_once(
        benchmark, lambda: ablate_start_direction(_graph(), MACHINE)
    )
    _table(
        "ablation_start_direction",
        results,
        "Ablation -- adjustment direction (start minimum vs maximum)",
    )
    by_arm = {r.arm: r for r in results}
    # The paper's choice converges at least as well, with far fewer
    # threads held during adaptation (no initial over-subscription).
    assert (
        by_arm["start-minimum"].converged_throughput
        > 0.8 * by_arm["start-maximum"].converged_throughput
    )
    assert (
        by_arm["start-minimum"].saso.max_threads_used
        <= by_arm["start-maximum"].saso.max_threads_used
    )


def test_ablation_coordination(benchmark):
    results = run_once(
        benchmark, lambda: ablate_coordination(_graph(), MACHINE)
    )
    _table(
        "ablation_coordination",
        results,
        "Ablation -- iterative refinement vs one-shot combination",
    )
    by_arm = {r.arm: r for r in results}
    # Iterative refinement finds a better joint configuration than a
    # single threading-model pass followed by thread tuning.
    assert (
        by_arm["iterative"].converged_throughput
        > 1.1 * by_arm["one-shot"].converged_throughput
    )


def test_ablation_binning(benchmark):
    results = run_once(
        benchmark, lambda: ablate_binning(_graph(), MACHINE)
    )
    _table(
        "ablation_binning",
        results,
        "Ablation -- logarithmic binning (O2) vs per-operator groups",
    )
    by_arm = {r.arm: r for r in results}
    # Binning reaches a comparable configuration...
    assert (
        by_arm["log-binning"].converged_throughput
        > 0.7 * by_arm["per-operator"].converged_throughput
    )
    # ...in no more adjustment time (O2's point is settling time).
    assert (
        by_arm["log-binning"].settling_time_s
        <= 1.2 * by_arm["per-operator"].settling_time_s
    )


def test_ablation_primary_order(benchmark):
    results = run_once(
        benchmark, lambda: ablate_primary_order(_graph(), MACHINE)
    )
    record(
        "ablation_primary_order",
        format_table(
            [
                "arm",
                "converged T/s",
                "settling s",
                "mean threads",
                "periods at max threads",
            ],
            [
                [
                    r.arm,
                    r.converged_throughput,
                    r.settling_time_s,
                    r.mean_threads,
                    r.periods_at_max_threads,
                ]
                for r in results
            ],
            title=(
                "Ablation -- primary adjustment order "
                "(thread count vs threading model)"
            ),
        ),
    )
    by_arm = {r.arm: r for r in results}
    adopted = by_arm["thread-count-primary"]
    rejected = by_arm["threading-model-primary"]
    # The adopted ordering settles faster ...
    assert adopted.settling_time_s < rejected.settling_time_s
    # ... and oversubscribes less during adaptation (paper's "avoid
    # overshoot" argument: the inner thread search repeatedly climbs to
    # the degradation point).
    assert (
        adopted.periods_at_max_threads
        <= rejected.periods_at_max_threads
    )
    assert adopted.mean_threads <= rejected.mean_threads * 1.05
    # Both reach comparable throughput on this workload.
    assert (
        adopted.converged_throughput
        > 0.85 * rejected.converged_throughput
    )
